"""The Section 6.2 evaluation protocol: precision of inferred facts.

For each quality-control configuration (semantic constraints on/off ×
rule-cleaning θ) the experiment runs the grounding loop iteration by
iteration; each iteration's newly inferred facts are judged (by the
oracle standing in for the paper's two human judges, optionally via the
paper's 25-fact random sample) and accumulated into a precision-vs-
estimated-correct-facts curve — the data behind Figure 7(a).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core import Fact, GroundingConfig, ProbKB
from ..datasets.reverb_sherlock import GeneratedKB, OracleJudge
from ..relational import Scan, col, const
from ..relational.expr import Compare
from ..relational.plan import Filter
from .rule_cleaning import cleaned_kb


@dataclass(frozen=True)
class QualityConfig:
    """One line of Figure 7(a) / Table 4."""

    use_constraints: bool
    theta: float
    label: str = ""

    def describe(self) -> str:
        if self.label:
            return self.label
        sc = "SC" if self.use_constraints else "no-SC"
        rc = "no-RC" if self.theta >= 1.0 else f"RC top {int(self.theta * 100)}%"
        return f"{sc} {rc}"


#: The paper's Table 4 parameter grid.
G1_CONFIGS = [
    QualityConfig(use_constraints=False, theta=1.0),
    QualityConfig(use_constraints=False, theta=0.2),
    QualityConfig(use_constraints=False, theta=0.1),
]
G2_CONFIGS = [
    QualityConfig(use_constraints=True, theta=1.0),
    QualityConfig(use_constraints=True, theta=0.5),
    QualityConfig(use_constraints=True, theta=0.2),
]
TABLE4_CONFIGS = G1_CONFIGS + G2_CONFIGS


@dataclass
class CurvePoint:
    """One judged batch of newly inferred facts."""

    iteration: int
    new_facts: int
    sample_size: int
    precision: float
    estimated_correct: float  # cumulative


@dataclass
class QualityRunResult:
    config: QualityConfig
    points: List[CurvePoint] = field(default_factory=list)
    total_new_facts: int = 0
    exploded: bool = False  # KB grew past the safety cap (the paper's
    # no-constraints run could not finish grounding either)

    @property
    def estimated_correct(self) -> float:
        return self.points[-1].estimated_correct if self.points else 0.0

    @property
    def overall_precision(self) -> float:
        if not self.total_new_facts:
            return 0.0
        return self.estimated_correct / self.total_new_facts

    def series(self) -> List[Tuple[float, float]]:
        """(estimated correct facts, precision) pairs for plotting."""
        return [(p.estimated_correct, p.precision) for p in self.points]


def judge_precision(
    facts: Sequence[Fact],
    judge: OracleJudge,
    sample_size: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Tuple[float, int]:
    """The paper's estimator: precision = (correct + probable) / sample.

    ``sample_size=None`` judges every fact (exact); the paper used
    random samples of 25.
    """
    if not facts:
        return 0.0, 0
    sampled = list(facts)
    if sample_size is not None and len(sampled) > sample_size:
        rng = rng or random.Random(0)
        sampled = rng.sample(sampled, sample_size)
    acceptable = sum(1 for fact in sampled if judge.is_acceptable(fact))
    return acceptable / len(sampled), len(sampled)


def run_quality_experiment(
    generated: GeneratedKB,
    config: QualityConfig,
    backend: str = "single",
    max_iterations: int = 15,
    sample_size: Optional[int] = None,
    explosion_cap: int = 500_000,
    seed: int = 0,
) -> QualityRunResult:
    """Run one Figure 7(a) line.

    Grounds iteration by iteration; judges each iteration's new facts;
    stops at closure, when an iteration adds no more correct facts, or
    when the KB size passes ``explosion_cap`` (mirroring the paper's
    unfinishable no-constraint run).
    """
    kb = cleaned_kb(generated.kb, config.theta)
    system = ProbKB(
        kb,
        backend=backend,
        grounding=GroundingConfig(apply_constraints=config.use_constraints),
    )
    rng = random.Random(seed)
    outcome = QualityRunResult(config=config)
    estimated_correct = 0.0

    for iteration in range(1, max_iterations + 1):
        first_new_id = system.rkb._next_fact_id
        system.grounder.ground_atoms_iteration(iteration)
        new_facts = _facts_since(system, first_new_id)
        outcome.total_new_facts += len(new_facts)
        if not new_facts:
            break
        precision, judged = judge_precision(
            new_facts, generated.judge, sample_size=sample_size, rng=rng
        )
        estimated_correct += precision * len(new_facts)
        outcome.points.append(
            CurvePoint(
                iteration=iteration,
                new_facts=len(new_facts),
                sample_size=judged,
                precision=precision,
                estimated_correct=estimated_correct,
            )
        )
        if system.fact_count() > explosion_cap:
            outcome.exploded = True
            break
        if precision == 0.0 and iteration > 1:
            break  # no more correct facts are being inferred
    return outcome


def _facts_since(system: ProbKB, first_id: int) -> List[Fact]:
    """Inferred facts with id >= first_id still present in TΠ (facts the
    constraints already removed don't count — they were never released)."""
    plan = Filter(Scan("TP", "T"), Compare(">=", col("T.I"), const(first_id)))
    return [system.rkb.decode_fact(row) for row in system.backend.query(plan).rows]


def run_figure7a(
    generated: GeneratedKB,
    configs: Sequence[QualityConfig] = TABLE4_CONFIGS,
    backend: str = "single",
    max_iterations: int = 15,
    sample_size: Optional[int] = None,
    explosion_cap: int = 500_000,
) -> List[QualityRunResult]:
    """All six quality configurations (Table 4 / Figure 7(a))."""
    return [
        run_quality_experiment(
            generated,
            config,
            backend=backend,
            max_iterations=max_iterations,
            sample_size=sample_size,
            explosion_cap=explosion_cap,
        )
        for config in configs
    ]
