"""Quality control (Section 5) and its evaluation protocol (Section 6.2):
semantic constraints, ambiguity detection, rule cleaning, and the
precision-curve experiments behind Figure 7."""

from .ambiguity import (
    AMBIGUOUS_ENTITY,
    AMBIGUOUS_JOIN_KEY,
    CATEGORY_LABELS,
    GENERAL_TYPES,
    INCORRECT_EXTRACTION,
    INCORRECT_RULE,
    OTHER,
    SYNONYMS,
    Violation,
    ViolationAudit,
    categorize_violations,
    find_violations,
)
from .evaluation import (
    CurvePoint,
    G1_CONFIGS,
    G2_CONFIGS,
    QualityConfig,
    QualityRunResult,
    TABLE4_CONFIGS,
    judge_precision,
    run_figure7a,
    run_quality_experiment,
)
from .constraints import precleaned_kb
from .rule_cleaning import (
    clean_rules,
    cleaned_kb,
    cleaning_report,
    merge_duplicate_rules,
)

__all__ = [
    "AMBIGUOUS_ENTITY",
    "AMBIGUOUS_JOIN_KEY",
    "CATEGORY_LABELS",
    "CurvePoint",
    "G1_CONFIGS",
    "G2_CONFIGS",
    "GENERAL_TYPES",
    "INCORRECT_EXTRACTION",
    "INCORRECT_RULE",
    "OTHER",
    "QualityConfig",
    "QualityRunResult",
    "SYNONYMS",
    "TABLE4_CONFIGS",
    "Violation",
    "ViolationAudit",
    "categorize_violations",
    "clean_rules",
    "cleaned_kb",
    "cleaning_report",
    "find_violations",
    "judge_precision",
    "merge_duplicate_rules",
    "precleaned_kb",
    "run_figure7a",
    "run_quality_experiment",
]
