"""Ambiguity detection and violation auditing (Sections 5.2, 6.2.2).

Functional-constraint violations are detected by Query 3's subquery;
this module additionally *categorizes* the violations by error source,
reproducing Figure 7(b)'s breakdown:

    ambiguities (detected) / ambiguous join keys / incorrect rules /
    incorrect extractions / general types / synonyms

The paper's authors hand-categorized 100 sampled violations; here the
generator's ground truth plays that role, with derivations recovered
from the lineage in TΦ.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core import Fact, ProbKB, TYPE_I, TYPE_II
from ..core.lineage import LineageIndex
from ..datasets.reverb_sherlock import GeneratedKB

AMBIGUOUS_ENTITY = "ambiguity_detected"
AMBIGUOUS_JOIN_KEY = "ambiguous_join_key"
INCORRECT_RULE = "incorrect_rule"
INCORRECT_EXTRACTION = "incorrect_extraction"
GENERAL_TYPES = "general_types"
SYNONYMS = "synonyms"
OTHER = "other"

CATEGORY_LABELS = {
    AMBIGUOUS_ENTITY: "Ambiguities (detected)",
    AMBIGUOUS_JOIN_KEY: "Ambiguous join keys",
    INCORRECT_RULE: "Incorrect rules",
    INCORRECT_EXTRACTION: "Incorrect extractions",
    GENERAL_TYPES: "General types",
    SYNONYMS: "Synonyms",
    OTHER: "Other",
}


@dataclass
class Violation:
    """One violating entity with the facts of its violating group."""

    entity: str
    entity_class: str
    relation: str
    facts: List[Tuple[int, Fact]]  # (fact id, fact)
    category: str = OTHER


@dataclass
class ViolationAudit:
    violations: List[Violation] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.violations)

    def distribution(self) -> Dict[str, float]:
        """Fraction of violating entities per error source."""
        counts = Counter(v.category for v in self.violations)
        total = max(1, self.total)
        return {category: counts.get(category, 0) / total for category in CATEGORY_LABELS}

    def counts(self) -> Dict[str, int]:
        counts = Counter(v.category for v in self.violations)
        return {category: counts.get(category, 0) for category in CATEGORY_LABELS}


def find_violations(system: ProbKB) -> List[Violation]:
    """All functional-constraint violations currently in TΠ.

    Recomputes Query 3's grouping in Python so the violating *groups*
    (not just entity keys) are available for categorization.
    """
    facts_by_id = {
        row[0]: system.rkb.decode_fact(row)
        for row in system.backend.query(
            __import__("repro.relational", fromlist=["Scan"]).Scan("TP")
        ).rows
    }
    constraints = system.kb.constraints
    groups: Dict[Tuple[str, str, str, str, int], List[Tuple[int, Fact]]] = defaultdict(list)
    degree_of: Dict[Tuple[str, int], int] = {}
    for constraint in constraints:
        degree_of[(constraint.relation, constraint.arg)] = constraint.degree
    for fact_id, fact in facts_by_id.items():
        for arg in (TYPE_I, TYPE_II):
            if (fact.relation, arg) not in degree_of:
                continue
            if arg == TYPE_I:
                key = (fact.relation, fact.subject, fact.subject_class, fact.object_class, arg)
            else:
                key = (fact.relation, fact.object, fact.object_class, fact.subject_class, arg)
            groups[key].append((fact_id, fact))

    violations = []
    for (relation, entity, entity_class, _, arg), members in sorted(groups.items()):
        degree = degree_of[(relation, arg)]
        if len(members) > degree:
            violations.append(
                Violation(
                    entity=entity,
                    entity_class=entity_class,
                    relation=relation,
                    facts=sorted(members),
                )
            )
    return violations


def categorize_violations(
    system: ProbKB,
    generated: GeneratedKB,
    violations: Optional[List[Violation]] = None,
) -> ViolationAudit:
    """Assign each violation an error-source category (Figure 7(b)).

    Requires grounding (including ground factors) to have run so the
    lineage in TΦ is available.
    """
    if violations is None:
        violations = find_violations(system)
    lineage = system.lineage()
    facts_by_id = system._facts_by_id()
    rule_correctness = _rule_lookup(generated)

    for violation in violations:
        violation.category = _categorize(
            violation, generated, lineage, facts_by_id, rule_correctness
        )
    return ViolationAudit(violations=violations)


def _categorize(
    violation: Violation,
    generated: GeneratedKB,
    lineage: LineageIndex,
    facts_by_id: Dict[int, Fact],
    rule_correctness: Dict[Tuple, bool],
) -> str:
    base_facts = [
        (fact_id, fact) for fact_id, fact in violation.facts if fact.weight is not None
    ]
    # ambiguous entity caught red-handed: the violating entity itself
    # denotes several real-world objects and its *extracted* facts clash
    if violation.entity in generated.ambiguous_surfaces and len(base_facts) > 1:
        return AMBIGUOUS_ENTITY

    saw_join_key = saw_wrong_rule = saw_extraction = False
    saw_general = saw_synonym = False

    objects = [fact.object for _, fact in violation.facts]
    primary = {generated.synonym_surfaces.get(obj, obj) for obj in objects}
    if len(primary) < len(set(objects)):
        saw_synonym = True
    if _hierarchy_related(primary, generated):
        saw_general = True

    for fact_id, fact in violation.facts:
        if fact.key in generated.injected_error_keys:
            saw_extraction = True
        for derivation in lineage.derivations_of(fact_id):
            premises = [facts_by_id.get(i) for i in derivation.body]
            premises = [p for p in premises if p is not None]
            join_entities = _join_entities(fact, premises)
            if any(e in generated.ambiguous_surfaces for e in join_entities):
                saw_join_key = True
            correct = rule_correctness.get(
                _derivation_key(fact, premises, derivation.weight)
            )
            if correct is False:
                saw_wrong_rule = True

    if saw_join_key:
        return AMBIGUOUS_JOIN_KEY
    if saw_wrong_rule:
        return INCORRECT_RULE
    if saw_extraction:
        return INCORRECT_EXTRACTION
    if saw_general:
        return GENERAL_TYPES
    if saw_synonym:
        return SYNONYMS
    if violation.entity in generated.ambiguous_surfaces:
        return AMBIGUOUS_ENTITY
    return OTHER


def _join_entities(head: Fact, premises: Sequence[Fact]) -> Set[str]:
    """Entities shared between the body facts but absent from the head —
    the join keys z whose ambiguity poisons the inference."""
    if len(premises) < 2:
        return set()
    head_entities = {head.subject, head.object}
    first = {premises[0].subject, premises[0].object}
    second = {premises[1].subject, premises[1].object}
    return (first & second) - head_entities


def _derivation_key(head: Fact, premises: Sequence[Fact], weight: float) -> Tuple:
    return (
        head.relation,
        tuple(sorted(p.relation for p in premises)),
        round(weight, 2),
    )


def _rule_lookup(generated: GeneratedKB) -> Dict[Tuple, bool]:
    """Index rule correctness by (head relation, sorted body relations,
    weight) — enough to identify the rule behind a TΦ derivation."""
    lookup: Dict[Tuple, bool] = {}
    for rule, correct in generated.rule_is_correct.items():
        key = (
            rule.head.relation,
            tuple(sorted(atom.relation for atom in rule.body)),
            round(rule.weight, 2),
        )
        # on collision prefer flagging wrong rules (conservative)
        if key in lookup:
            lookup[key] = lookup[key] and correct
        else:
            lookup[key] = correct
    return lookup


def _hierarchy_related(objects: Set[str], generated: GeneratedKB) -> bool:
    """Do two of the group's objects stand in a located_in ancestry
    (e.g. a city and its country, both typed Place)?"""
    parent = generated.world.parent
    reals: Set[str] = set()
    for obj in objects:
        reals.update(generated.surface_to_reals.get(obj, ()))
    for real in reals:
        ancestor = parent.get(real)
        while ancestor is not None:
            if ancestor in reals:
                return True
            ancestor = parent.get(ancestor)
    return False
