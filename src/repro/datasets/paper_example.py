"""The paper's running example (Table 1): the Ruth Gruber KB.

Grounding it must reproduce the TΠ and TΦ contents of Figure 3 exactly
(the test suite asserts that); examples and the serving-layer demos use
it as the smallest end-to-end KB.
"""

from ..core import Atom, Fact, FunctionalConstraint, HornClause, KnowledgeBase, Relation

RG, NYC, BR = "Ruth Gruber", "New York City", "Brooklyn"


def paper_kb(with_constraints: bool = False) -> KnowledgeBase:
    classes = {
        "Writer": {RG},
        "City": {NYC},
        "Place": {BR},
    }
    relations = [
        Relation("born_in", "Writer", "Place"),
        Relation("born_in", "Writer", "City"),
        Relation("live_in", "Writer", "Place"),
        Relation("live_in", "Writer", "City"),
        Relation("grow_up_in", "Writer", "Place"),
        Relation("grow_up_in", "Writer", "City"),
        Relation("located_in", "Place", "City"),
    ]
    facts = [
        Fact("born_in", RG, "Writer", NYC, "City", weight=0.96),
        Fact("born_in", RG, "Writer", BR, "Place", weight=0.93),
    ]

    def rule1(head_rel, body_rel, c1, c2, w):
        return HornClause.make(
            Atom(head_rel, ("x", "y")),
            [Atom(body_rel, ("x", "y"))],
            w,
            {"x": c1, "y": c2},
        )

    def rule3(head_rel, q_rel, r_rel, w):
        # located_in(x, y) <- q(z, x), r(z, y);  x: Place, y: City, z: Writer
        return HornClause.make(
            Atom(head_rel, ("x", "y")),
            [Atom(q_rel, ("z", "x")), Atom(r_rel, ("z", "y"))],
            w,
            {"x": "Place", "y": "City", "z": "Writer"},
        )

    rules = [
        rule1("live_in", "born_in", "Writer", "Place", 1.40),
        rule1("live_in", "born_in", "Writer", "City", 1.53),
        rule1("grow_up_in", "born_in", "Writer", "Place", 2.68),
        rule1("grow_up_in", "born_in", "Writer", "City", 0.74),
        rule3("located_in", "live_in", "live_in", 0.32),
        rule3("located_in", "born_in", "born_in", 0.52),
    ]
    constraints = []
    if with_constraints:
        constraints = [FunctionalConstraint("born_in", arg=1, degree=1)]
    return KnowledgeBase(
        classes=classes,
        relations=relations,
        facts=facts,
        rules=rules,
        constraints=constraints,
    )
