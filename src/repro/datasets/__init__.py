"""Datasets: the ReVerb-Sherlock stand-in generator, its ground-truth
world and oracle judge, and the S1/S2 synthetic scale-out KBs."""

from .io import load_kb, save_kb
from .paper_example import paper_kb
from .reverb_sherlock import (
    GeneratedKB,
    OracleJudge,
    ReVerbSherlockConfig,
    generate,
)
from .synthetic import s1_kb, s2_kb
from .world import (
    PLAUSIBLE,
    SOUND,
    World,
    WorldConfig,
    WorldRule,
    apply_rules,
)

__all__ = [
    "GeneratedKB",
    "OracleJudge",
    "PLAUSIBLE",
    "ReVerbSherlockConfig",
    "SOUND",
    "World",
    "WorldConfig",
    "WorldRule",
    "apply_rules",
    "generate",
    "load_kb",
    "paper_kb",
    "s1_kb",
    "s2_kb",
    "save_kb",
]
