"""TSV serialization of knowledge bases.

The on-disk layout mirrors how ReVerb/Sherlock artifacts ship: one
facts file of weighted triples, one rules file of Horn clauses, one
classes file, and one constraints file.  Useful for caching generated
KBs and for inspecting them with standard tools.
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, List, Set

from ..core import (
    Atom,
    Fact,
    FunctionalConstraint,
    HornClause,
    KnowledgeBase,
    Relation,
)

FACTS_FILE = "facts.tsv"
RULES_FILE = "rules.tsv"
CLASSES_FILE = "classes.tsv"
RELATIONS_FILE = "relations.tsv"
CONSTRAINTS_FILE = "constraints.tsv"


def save_kb(kb: KnowledgeBase, directory: str) -> None:
    """Write a knowledge base as TSV files under ``directory``."""
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, CLASSES_FILE), "w") as handle:
        for class_name in sorted(kb.classes):
            for entity in sorted(kb.classes[class_name]):
                handle.write(f"{class_name}\t{entity}\n")
    with open(os.path.join(directory, RELATIONS_FILE), "w") as handle:
        declared = [
            relation
            for name in sorted(kb.relation_signatures)
            for relation in kb.relation_signatures[name]
        ]
        for relation in declared:
            handle.write(f"{relation.name}\t{relation.domain}\t{relation.range}\n")
    with open(os.path.join(directory, FACTS_FILE), "w") as handle:
        for fact in kb.facts:
            weight = "" if fact.weight is None else repr(fact.weight)
            handle.write(
                f"{fact.relation}\t{fact.subject}\t{fact.subject_class}\t"
                f"{fact.object}\t{fact.object_class}\t{weight}\n"
            )
    with open(os.path.join(directory, RULES_FILE), "w") as handle:
        for rule in kb.rules:
            handle.write(_rule_line(rule) + "\n")
    with open(os.path.join(directory, CONSTRAINTS_FILE), "w") as handle:
        for constraint in kb.constraints:
            handle.write(
                f"{constraint.relation}\t{constraint.arg}\t{constraint.degree}\n"
            )


def load_kb(directory: str, analysis: str = "warn") -> KnowledgeBase:
    """Read a knowledge base written by :func:`save_kb`.

    ``analysis`` controls a post-load static-analysis pass over the
    loaded program (see :mod:`repro.analyze`): ``"warn"`` (the default)
    surfaces defects in the on-disk KB as an
    :class:`~repro.analyze.AnalysisWarning` right at load time instead
    of later inside grounding, ``"strict"`` raises
    :class:`~repro.analyze.AnalysisError`, ``"off"`` skips the pass.
    The loaded KB itself is identical in all three modes.
    """
    from ..core.config import ANALYSIS_MODES

    if analysis not in ANALYSIS_MODES:
        raise ValueError(
            f"unknown analysis mode {analysis!r} (use one of {ANALYSIS_MODES})"
        )
    classes: Dict[str, Set[str]] = {}
    with open(os.path.join(directory, CLASSES_FILE)) as handle:
        for line in handle:
            class_name, entity = line.rstrip("\n").split("\t")
            classes.setdefault(class_name, set()).add(entity)

    relations: List[Relation] = []
    with open(os.path.join(directory, RELATIONS_FILE)) as handle:
        for line in handle:
            name, domain, range_ = line.rstrip("\n").split("\t")
            relations.append(Relation(name, domain, range_))

    facts: List[Fact] = []
    with open(os.path.join(directory, FACTS_FILE)) as handle:
        for line in handle:
            fields = line.rstrip("\n").split("\t")
            relation, subject, subject_class, obj, object_class, weight = fields
            facts.append(
                Fact(
                    relation,
                    subject,
                    subject_class,
                    obj,
                    object_class,
                    float(weight) if weight else None,
                )
            )

    rules: List[HornClause] = []
    with open(os.path.join(directory, RULES_FILE)) as handle:
        for line in handle:
            rules.append(_parse_rule_line(line.rstrip("\n")))

    constraints: List[FunctionalConstraint] = []
    with open(os.path.join(directory, CONSTRAINTS_FILE)) as handle:
        for line in handle:
            relation, arg, degree = line.rstrip("\n").split("\t")
            constraints.append(
                FunctionalConstraint(relation, arg=int(arg), degree=int(degree))
            )

    kb = KnowledgeBase(
        classes=classes,
        relations=relations,
        facts=facts,
        rules=rules,
        constraints=constraints,
        validate=False,
    )
    if analysis != "off":
        from ..analyze import AnalysisError, AnalysisWarning, analyze

        report = analyze(kb, include_infos=False)
        if report.has_errors and analysis == "strict":
            raise AnalysisError(report)
        problems = report.errors + report.warnings
        if problems:
            shown = "; ".join(f.render() for f in problems[:3])
            suffix = "" if len(problems) <= 3 else f" (+{len(problems) - 3} more)"
            warnings.warn(
                f"KB loaded from {directory!r} has defects: "
                f"{report.summary()} — {shown}{suffix} "
                f"(run `repro analyze --kb {directory}` for details)",
                AnalysisWarning,
                stacklevel=2,
            )
    return kb


def _rule_line(rule: HornClause) -> str:
    """``weight<TAB>score<TAB>head<TAB>body...<TAB>vars`` with atoms as
    ``rel(a,b)`` and vars as ``x:Class,...``."""
    atoms = [_atom_text(rule.head)] + [_atom_text(atom) for atom in rule.body]
    vars_text = ",".join(f"{var}:{cls}" for var, cls in rule.var_classes)
    return "\t".join([repr(rule.weight), repr(rule.score)] + atoms + [vars_text])


def _atom_text(atom: Atom) -> str:
    return f"{atom.relation}({atom.args[0]},{atom.args[1]})"


def _parse_atom(text: str) -> Atom:
    relation, _, args = text.partition("(")
    first, second = args.rstrip(")").split(",")
    return Atom(relation, (first, second))


def _parse_rule_line(line: str) -> HornClause:
    fields = line.split("\t")
    weight, score = float(fields[0]), float(fields[1])
    atoms = [_parse_atom(text) for text in fields[2:-1]]
    var_classes = {}
    for item in fields[-1].split(","):
        var, _, cls = item.partition(":")
        var_classes[var] = cls
    return HornClause.make(
        atoms[0], atoms[1:], weight, var_classes, score=score
    )
