"""The ReVerb-Sherlock knowledge base, synthesized with ground truth.

The paper's primary dataset combines ReVerb Wikipedia extractions,
Sherlock's 30,912 learned Horn clauses, and Leibniz's functional-
relation repository.  Those artifacts cannot be shipped here, so this
module generates a *calibrated stand-in*: a ground-truth world
(:mod:`repro.datasets.world`), a noisy surface-level extraction layer,
a Sherlock-style learned rule set with imperfect confidence scores, and
a Leibniz-style constraint repository.  Every error source the paper
analyses (Section 5, Figure 7(b)) is injected at a configurable rate:

* **E1** incorrect extractions — corrupted facts;
* **E2** incorrect rules — schema-valid but semantically wrong clauses;
* **E3** ambiguous entities — several real entities sharing a surface
  name; plus synonyms (one entity, two names) and general types
  (a City extracted as merely a Place);
* **E4** propagated errors — emerge on their own during inference.

Because the generator knows the world, it also provides the
:class:`OracleJudge` that replaces the paper's two human judges.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core import (
    Atom,
    Fact,
    FunctionalConstraint,
    HornClause,
    KnowledgeBase,
    Relation,
    TYPE_I,
    TYPE_II,
)
from .world import World, WorldConfig, WorldRule, _PATTERN_ARGS

Triple = Tuple[str, str, str]


@dataclass
class ReVerbSherlockConfig:
    """Knobs for the generated KB; defaults give a laptop-scale KB with
    the paper's error-source mix."""

    world: WorldConfig = field(default_factory=WorldConfig)
    #: fraction of true base facts that get extracted
    extraction_rate: float = 0.9
    #: E1: fraction of extracted facts corrupted
    extraction_error_rate: float = 0.07
    #: E3: number of ambiguous surface names (each merging 2-3 people);
    #: ambiguity is pervasive in ReVerb people names (Section 5.2)
    ambiguous_groups: int = 45
    #: number of entities with a second (synonym) surface name
    synonym_entities: int = 3
    #: probability a City/Country object is typed merely as Place
    general_type_rate: float = 0.03
    #: E2: wrong rules per correct rule
    wrong_rule_ratio: float = 0.35
    #: open-domain noise: relations with facts but no rules (ReVerb has
    #: 83K relations for 31K rules)
    n_bulk_relations: int = 60
    n_bulk_facts: int = 150
    seed: int = 0


@dataclass
class GeneratedKB:
    """The generated KB plus everything needed to audit it."""

    kb: KnowledgeBase
    world: World
    config: ReVerbSherlockConfig
    surface_to_reals: Dict[str, List[str]]
    real_to_surface: Dict[str, str]
    ambiguous_surfaces: FrozenSet[str]
    synonym_surfaces: Dict[str, str]  # synonym surface -> primary surface
    injected_error_keys: FrozenSet[Tuple[str, str, str, str, str]]
    rule_is_correct: Dict[HornClause, bool]
    judge: "OracleJudge"

    def stats(self) -> Dict[str, int]:
        return self.kb.stats()


class OracleJudge:
    """Ground-truth replacement for the paper's human judges.

    Judges a surface-level fact by resolving its surface names to the
    real entities they may denote and checking the world's closures:
    *correct* if some interpretation is in the sound closure, *probable*
    if some is in the plausible closure, otherwise *incorrect*.
    """

    def __init__(self, world: World, surface_to_reals: Dict[str, List[str]]):
        self.world = world
        self.surface_to_reals = surface_to_reals

    def judge(self, fact: Fact) -> str:
        subjects = self._resolve(fact.subject, fact.subject_class)
        objects = self._resolve(fact.object, fact.object_class)
        best = "incorrect"
        for subject in subjects:
            for obj in objects:
                verdict = self.world.judge_triple((fact.relation, subject, obj))
                if verdict == "correct":
                    return "correct"
                if verdict == "probable":
                    best = "probable"
        return best

    def is_acceptable(self, fact: Fact) -> bool:
        """The paper's precision counts correct + probable facts."""
        return self.judge(fact) != "incorrect"

    def _resolve(self, surface: str, class_name: str) -> List[str]:
        candidates = self.surface_to_reals.get(surface, [])
        return [
            real
            for real in candidates
            if class_name in self.world.classes_of(real)
        ]


def generate(config: Optional[ReVerbSherlockConfig] = None) -> GeneratedKB:
    """Generate the full noisy KB with its oracle."""
    config = config or ReVerbSherlockConfig()
    world = World(config.world)
    rng = random.Random(config.seed + 1)

    surface_to_reals, real_to_surface, ambiguous, synonyms = _build_surfaces(
        world, config, rng
    )
    facts, injected_errors, relation_signatures = _extract_facts(
        world, config, rng, real_to_surface, synonyms
    )
    _add_bulk_relations(world, config, rng, real_to_surface, facts, relation_signatures)
    rules, rule_is_correct = _learn_rules(world, config, rng, relation_signatures)
    constraints = _leibniz_constraints()
    classes = _surface_classes(world, surface_to_reals)
    relations = [
        Relation(name, domain, range_)
        for name, signatures in relation_signatures.items()
        for domain, range_ in sorted(signatures)
    ]

    kb = KnowledgeBase(
        classes=classes,
        relations=relations,
        facts=facts,
        rules=rules,
        constraints=constraints,
    )
    judge = OracleJudge(world, surface_to_reals)
    return GeneratedKB(
        kb=kb,
        world=world,
        config=config,
        surface_to_reals=surface_to_reals,
        real_to_surface=real_to_surface,
        ambiguous_surfaces=frozenset(ambiguous),
        synonym_surfaces=synonyms,
        injected_error_keys=frozenset(injected_errors),
        rule_is_correct=rule_is_correct,
        judge=judge,
    )


# -- surfaces ------------------------------------------------------------------


def _build_surfaces(world: World, config: ReVerbSherlockConfig, rng: random.Random):
    """Assign surface names; inject ambiguity (shared names) and
    synonyms (extra names)."""
    real_to_surface: Dict[str, str] = {}
    surface_to_reals: Dict[str, List[str]] = defaultdict(list)
    ambiguous: Set[str] = set()
    synonyms: Dict[str, str] = {}

    people = list(world.people)
    rng.shuffle(people)
    index = 0
    for group in range(config.ambiguous_groups):
        group_size = rng.choice((2, 2, 3))
        members = people[index : index + group_size]
        if len(members) < 2:
            break
        index += group_size
        shared = f"amb_person_{group}"
        ambiguous.add(shared)
        for member in members:
            real_to_surface[member] = shared
            surface_to_reals[shared].append(member)

    for entity in (
        world.people + world.cities + world.countries + world.districts + world.organizations
    ):
        if entity in real_to_surface:
            continue
        real_to_surface[entity] = entity
        surface_to_reals[entity].append(entity)

    # synonyms: a second surface for some cities (e.g. "NYC"/"New York")
    candidates = [c for c in world.cities]
    rng.shuffle(candidates)
    for city in candidates[: config.synonym_entities]:
        alias = f"{city}_aka"
        synonyms[alias] = city
        surface_to_reals[alias].append(city)

    return dict(surface_to_reals), real_to_surface, ambiguous, synonyms


def _pick_classes(
    world: World,
    config: ReVerbSherlockConfig,
    rng: random.Random,
    entity: str,
) -> str:
    """The class an extraction assigns to an entity mention: usually the
    most specific one, occasionally a general type."""
    classes = world.classes_of(entity)
    if len(classes) > 1 and rng.random() < config.general_type_rate:
        return classes[-1]  # the general type (Place)
    return classes[0]


# -- extraction -----------------------------------------------------------------


def _extract_facts(
    world: World,
    config: ReVerbSherlockConfig,
    rng: random.Random,
    real_to_surface: Dict[str, str],
    synonyms: Dict[str, str],
):
    """Extract the base facts with weights and injected E1 errors."""
    facts: List[Fact] = []
    injected_errors: Set[Tuple[str, str, str, str, str]] = set()
    relation_signatures: Dict[str, Set[Tuple[str, str]]] = defaultdict(set)
    synonym_of: Dict[str, List[str]] = defaultdict(list)
    for alias, primary in synonyms.items():
        synonym_of[primary].append(alias)

    pool: Dict[str, List[str]] = {
        "Person": world.people,
        "Place": world.districts + world.cities,
        "City": world.cities,
        "Country": world.countries,
        "Organization": world.organizations,
    }

    for triple in sorted(world.true_facts):
        if rng.random() > config.extraction_rate:
            continue
        relation, subject_real, object_real = triple
        subject = real_to_surface[subject_real]
        obj = real_to_surface[object_real]
        if synonym_of.get(object_real) and rng.random() < 0.5:
            obj = rng.choice(synonym_of[object_real])
        subject_class = _pick_classes(world, config, rng, subject_real)
        object_class = _pick_classes(world, config, rng, object_real)

        corrupt = rng.random() < config.extraction_error_rate
        if corrupt:
            # E1: the extractor mangled the object
            candidates = pool.get(object_class) or world.cities
            wrong_object_real = rng.choice(candidates)
            obj = real_to_surface[wrong_object_real]
            weight = round(rng.uniform(0.3, 0.85), 2)
        else:
            weight = round(rng.uniform(0.6, 0.99), 2)

        fact = Fact(relation, subject, subject_class, obj, object_class, weight)
        facts.append(fact)
        relation_signatures[relation].add((subject_class, object_class))
        if corrupt and world.judge_triple(
            (relation, subject_real, _first_real(obj, real_to_surface, synonyms))
        ) == "incorrect":
            injected_errors.add(fact.key)
    return facts, injected_errors, relation_signatures


def _first_real(surface: str, real_to_surface, synonyms) -> str:
    if surface in synonyms:
        return synonyms[surface]
    return surface


def _add_bulk_relations(
    world: World,
    config: ReVerbSherlockConfig,
    rng: random.Random,
    real_to_surface: Dict[str, str],
    facts: List[Fact],
    relation_signatures: Dict[str, Set[Tuple[str, str]]],
) -> None:
    """Open-domain noise: many relations that no rule ever mentions."""
    entities = world.people + world.cities + world.organizations
    for bulk in range(config.n_bulk_relations):
        relation = f"bulk_rel_{bulk}"
        relation_signatures[relation]  # register even if no facts drawn
        for _ in range(max(1, config.n_bulk_facts // max(1, config.n_bulk_relations))):
            subject_real = rng.choice(entities)
            object_real = rng.choice(entities)
            subject = real_to_surface[subject_real]
            obj = real_to_surface[object_real]
            subject_class = world.classes_of(subject_real)[0]
            object_class = world.classes_of(object_real)[0]
            facts.append(
                Fact(
                    relation,
                    subject,
                    subject_class,
                    obj,
                    object_class,
                    round(rng.uniform(0.5, 0.95), 2),
                )
            )
            relation_signatures[relation].add((subject_class, object_class))


# -- rule learning (Sherlock stand-in) -----------------------------------------------


def _learn_rules(
    world: World,
    config: ReVerbSherlockConfig,
    rng: random.Random,
    relation_signatures: Dict[str, Set[Tuple[str, str]]],
):
    """Instantiate correct rules over observed class signatures, then
    add schema-valid wrong rules with overlapping confidence scores."""
    correct_rules: List[HornClause] = []
    seen: Set[Tuple] = set()
    world_rules = world.sound_rules + world.plausible_rules
    for world_rule in world_rules:
        for clause in _instantiate(world_rule, relation_signatures, rng):
            identity = _rule_identity(clause)
            if identity in seen:
                continue
            seen.add(identity)
            correct_rules.append(clause)

    # weak geography-from-people rules: these ARE in the real Sherlock
    # set (the paper's Table 1 carries located_in(x,y) <- born_in(z,x) ∧
    # born_in(z,y) at weight 0.52).  With clean entities they are often
    # right; with ambiguous join keys they mass-produce wrong geography
    # that then cascades through the sound transitivity rules (Fig 5a).
    weak_geo: List[HornClause] = []
    for head, q_rel, r_rel in (
        ("located_in", "born_in", "born_in"),
        ("located_in", "live_in", "live_in"),
        ("located_in", "grow_up_in", "live_in"),
        ("capital_of", "born_in", "live_in"),
    ):
        template = WorldRule(head, (q_rel, r_rel), pattern=3)
        for clause in _instantiate(template, relation_signatures, rng):
            head_sig = (clause.classes["x"], clause.classes["y"])
            identity = _rule_identity(clause)
            if identity in seen:
                continue
            if head_sig not in relation_signatures.get(head, ()):
                continue
            seen.add(identity)
            weak_geo.append(clause)

    n_wrong = int(len(correct_rules) * config.wrong_rule_ratio)
    wrong_rules = _make_wrong_rules(
        relation_signatures, rng, seen, n_wrong, world_rules
    )

    rule_is_correct: Dict[HornClause, bool] = {}
    rules: List[HornClause] = []
    for clause in correct_rules:
        scored = _with_weight_and_score(
            clause, weight=rng.gauss(1.5, 0.4), score=min(0.99, max(0.2, rng.gauss(0.78, 0.13)))
        )
        rules.append(scored)
        rule_is_correct[scored] = True
    for clause in weak_geo:
        scored = _with_weight_and_score(
            clause, weight=rng.gauss(0.45, 0.1), score=min(0.99, max(0.02, rng.gauss(0.5, 0.15)))
        )
        rules.append(scored)
        rule_is_correct[scored] = False
    for clause in wrong_rules:
        scored = _with_weight_and_score(
            clause, weight=rng.gauss(0.9, 0.4), score=min(0.99, max(0.02, rng.gauss(0.42, 0.18)))
        )
        rules.append(scored)
        rule_is_correct[scored] = False
    rng.shuffle(rules)
    return rules, rule_is_correct


def _instantiate(
    world_rule: WorldRule,
    relation_signatures: Dict[str, Set[Tuple[str, str]]],
    rng: random.Random,
    max_per_rule: int = 12,
) -> List[HornClause]:
    """Typed instantiations of one world rule over observed signatures."""
    args = _PATTERN_ARGS[world_rule.pattern]
    results: List[HornClause] = []
    if len(world_rule.body) == 1:
        q_rel = world_rule.body[0]
        for signature in sorted(relation_signatures.get(q_rel, ())):
            binding = dict(zip(args[0], signature))
            clause = _build_clause(world_rule, binding)
            if clause is not None:
                results.append(clause)
    else:
        q_rel, r_rel = world_rule.body
        q_args, r_args = args
        combos = []
        for q_sig in sorted(relation_signatures.get(q_rel, ())):
            for r_sig in sorted(relation_signatures.get(r_rel, ())):
                binding: Dict[str, str] = {}
                ok = True
                for var, cls in list(zip(q_args, q_sig)) + list(zip(r_args, r_sig)):
                    if binding.setdefault(var, cls) != cls:
                        ok = False
                        break
                if ok:
                    combos.append(binding)
        rng.shuffle(combos)
        for binding in combos[:max_per_rule]:
            clause = _build_clause(world_rule, binding)
            if clause is not None:
                results.append(clause)
    return results


def _build_clause(world_rule: WorldRule, binding: Dict[str, str]) -> Optional[HornClause]:
    args = _PATTERN_ARGS[world_rule.pattern]
    if set(binding) < ({"x", "y"} | ({"z"} if len(args) == 2 else set())):
        return None
    head = Atom(world_rule.head, ("x", "y"))
    body = [
        Atom(rel, arg_pair)
        for rel, arg_pair in zip(world_rule.body, args)
    ]
    return HornClause.make(head, body, weight=1.0, var_classes=binding)


def _make_wrong_rules(
    relation_signatures: Dict[str, Set[Tuple[str, str]]],
    rng: random.Random,
    seen: Set[Tuple],
    count: int,
    world_rules: Sequence[WorldRule],
) -> List[HornClause]:
    """E2: schema-valid clauses that do not hold in the world, built by
    re-heading correct rule bodies (the paper's example: capital_of(x,y)
    <- born_in(z,x) ∧ born_in(z,y))."""
    named = [r for r in relation_signatures if not r.startswith("bulk_")]
    wrong: List[HornClause] = []
    attempts = 0
    while len(wrong) < count and attempts < count * 60:
        attempts += 1
        template = rng.choice(world_rules)
        head_rel = rng.choice(named)
        candidate = WorldRule(head_rel, template.body, template.pattern)
        clauses = _instantiate(candidate, relation_signatures, rng, max_per_rule=2)
        if not clauses:
            continue
        clause = rng.choice(clauses)
        # must not coincide with a correct rule, and the head signature
        # must be one the relation actually uses (schema-valid)
        identity = _rule_identity(clause)
        head_sig = (clause.classes["x"], clause.classes["y"])
        if identity in seen:
            continue
        if head_sig not in relation_signatures.get(head_rel, ()):  # implausible schema
            continue
        if _is_true_rule(candidate, world_rules):
            continue
        seen.add(identity)
        wrong.append(clause)
    return wrong


def _is_true_rule(candidate: WorldRule, world_rules: Sequence[WorldRule]) -> bool:
    return any(
        candidate.head == rule.head
        and candidate.body == rule.body
        and candidate.pattern == rule.pattern
        for rule in world_rules
    )


def _rule_identity(clause: HornClause) -> Tuple:
    return (
        clause.head.relation,
        tuple((a.relation, a.args) for a in clause.body),
        clause.var_classes,
    )


def _with_weight_and_score(clause: HornClause, weight: float, score: float) -> HornClause:
    return HornClause(
        head=clause.head,
        body=clause.body,
        weight=round(max(0.1, weight), 2),
        var_classes=clause.var_classes,
        score=round(score, 3),
    )


# -- constraints (Leibniz stand-in) ----------------------------------------------------


def _leibniz_constraints() -> List[FunctionalConstraint]:
    """Functional and pseudo-functional relations, as Leibniz provides
    in the paper (plus hand-labelled pseudo-functional degrees)."""
    return [
        FunctionalConstraint("born_in", arg=TYPE_I, degree=1),
        FunctionalConstraint("grow_up_in", arg=TYPE_I, degree=1),
        FunctionalConstraint("located_in", arg=TYPE_I, degree=1),
        FunctionalConstraint("headquartered_in", arg=TYPE_I, degree=1),
        FunctionalConstraint("capital_of", arg=TYPE_II, degree=1),
        # pseudo-functional: up to two residences per class pair
        FunctionalConstraint("live_in", arg=TYPE_I, degree=2),
    ]


def _surface_classes(
    world: World, surface_to_reals: Dict[str, List[str]]
) -> Dict[str, Set[str]]:
    classes: Dict[str, Set[str]] = defaultdict(set)
    for surface, reals in surface_to_reals.items():
        for real in reals:
            for class_name in world.classes_of(real):
                classes[class_name].add(surface)
    return dict(classes)
