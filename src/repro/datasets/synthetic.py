"""Synthetic scale-out KBs S1 and S2 (Section 6, Figure 6).

* **S1** keeps the ReVerb-Sherlock facts and sweeps the number of
  rules.  Extra rules are "randomly generated ... ensuring validity by
  substituting random heads for existing rules" — we copy an existing
  rule's body and give it a fresh head relation.
* **S2** keeps the rules and sweeps the number of facts by "adding
  random edges" over an entity pool that grows with the fact count
  (keeping the paper's sparsity: ~1.5 facts per entity).
"""

from __future__ import annotations

import random
from typing import Dict, List, Set, Tuple

from ..core import Atom, Fact, HornClause, KnowledgeBase, Relation
from .reverb_sherlock import GeneratedKB


def s1_kb(base: GeneratedKB, n_rules: int, seed: int = 0) -> KnowledgeBase:
    """Fixed facts, ``n_rules`` rules (S1)."""
    rng = random.Random(seed)
    source = base.kb
    rules: List[HornClause] = list(source.rules)[:n_rules]
    relations = dict(source.relations)
    synthetic_index = 0
    while len(rules) < n_rules:
        template = rng.choice(source.rules)
        head_name = f"syn_rel_{synthetic_index}"
        synthetic_index += 1
        classes = template.classes
        head = Atom(head_name, template.head.args)
        rules.append(
            HornClause(
                head=head,
                body=template.body,
                weight=round(rng.uniform(0.2, 2.0), 2),
                var_classes=template.var_classes,
                score=round(rng.uniform(0.05, 0.95), 3),
            )
        )
        relations[head_name] = Relation(
            head_name,
            classes[template.head.args[0]],
            classes[template.head.args[1]],
        )
    return KnowledgeBase(
        classes=source.classes,
        relations=relations.values(),
        facts=source.facts,
        rules=rules,
        constraints=source.constraints,
        validate=False,
    )


def s2_kb(base: GeneratedKB, n_facts: int, seed: int = 0) -> KnowledgeBase:
    """Fixed rules, ``n_facts`` facts (S2).

    Random edges are drawn over *all* fact signatures of the base KB:
    like ReVerb, where most of the 83K relations have no rules, most
    random edges are inert.  The entity pool grows with the fact count
    to preserve the original facts-per-entity density; the new entities
    join the appropriate classes.
    """
    rng = random.Random(seed)
    source = base.kb
    facts: List[Fact] = list(source.facts)[:n_facts]
    classes: Dict[str, Set[str]] = {
        name: set(members) for name, members in source.classes.items()
    }

    if len(facts) < n_facts:
        signatures = _fact_signatures(source)
        density = max(1.0, len(source.facts) / max(1, len(source.entities)))
        extra_needed = n_facts - len(facts)
        pool_size = int(extra_needed / density) + 1
        pools: Dict[str, List[str]] = {}
        for _, subject_class, object_class in signatures:
            for class_name in (subject_class, object_class):
                if class_name not in pools:
                    fresh = [f"syn_{class_name}_{i}" for i in range(pool_size)]
                    pools[class_name] = sorted(classes.get(class_name, set())) + fresh
                    classes.setdefault(class_name, set()).update(fresh)
        seen = {fact.key for fact in facts}
        while len(facts) < n_facts:
            relation, subject_class, object_class = rng.choice(signatures)
            subject = rng.choice(pools[subject_class])
            obj = rng.choice(pools[object_class])
            fact = Fact(
                relation,
                subject,
                subject_class,
                obj,
                object_class,
                round(rng.uniform(0.5, 0.99), 2),
            )
            if fact.key in seen:
                continue
            seen.add(fact.key)
            facts.append(fact)
    return KnowledgeBase(
        classes=classes,
        relations=source.relations.values(),
        facts=facts,
        rules=source.rules,
        constraints=source.constraints,
        validate=False,
    )


def _fact_signatures(kb: KnowledgeBase) -> List[Tuple[str, str, str]]:
    """(relation, subject class, object class) triples observed in the
    base facts — random edges follow the KB's own signature mix."""
    return sorted({(f.relation, f.subject_class, f.object_class) for f in kb.facts})


def _rule_signatures(kb: KnowledgeBase) -> List[Tuple[str, str, str]]:
    """(relation, subject class, object class) triples the rule bodies
    consume — edges on these are guaranteed to exercise the rules."""
    signatures: Set[Tuple[str, str, str]] = set()
    for rule in kb.rules:
        classes = rule.classes
        for atom in rule.body:
            signatures.add(
                (atom.relation, classes[atom.args[0]], classes[atom.args[1]])
            )
    return sorted(signatures)
