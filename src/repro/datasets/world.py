"""The ground-truth world behind the synthetic ReVerb-Sherlock KB.

The paper evaluates precision with human judges; a reproduction needs a
machine-checkable stand-in.  We sample a consistent world — people,
places, and organizations with genuinely functional relations — record
its true facts, and compute two closures:

* the **sound closure**: true facts plus everything derivable by sound
  rules (e.g. location transitivity) — judged *correct*;
* the **plausible closure**: additionally applying rules that are
  "likely but not certain" (e.g. you live where you were born) —
  judged *probable* (the paper's middle credibility level).

The closure code here is an independent forward-chaining implementation
(pure Python over triple indexes), deliberately separate from the
system under test so it can serve as a correctness oracle for the
grounding algorithm as well.
"""

from __future__ import annotations

import itertools
import random
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

Triple = Tuple[str, str, str]  # (relation, subject, object) over real entities

SOUND = "sound"
PLAUSIBLE = "plausible"


@dataclass(frozen=True)
class WorldRule:
    """A world-level inference rule over untyped triples.

    ``body`` atoms use the canonical variables of the six ProbKB
    patterns; ``pattern`` is the partition index (1-6) describing how
    the body variables connect (see repro.core.clauses).
    ``kind`` says whether conclusions are certain (SOUND) or likely
    (PLAUSIBLE) — this drives the three-level judging protocol.
    """

    head: str
    body: Tuple[str, ...]  # body relation names (1 or 2)
    pattern: int
    kind: str = SOUND


# body argument layouts per pattern, as (subject_var, object_var) pairs
_PATTERN_ARGS = {
    1: (("x", "y"),),
    2: (("y", "x"),),
    3: (("z", "x"), ("z", "y")),
    4: (("x", "z"), ("z", "y")),
    5: (("z", "x"), ("y", "z")),
    6: (("x", "z"), ("y", "z")),
}


def apply_rules(
    base: Set[Triple], rules: Sequence[WorldRule], max_iterations: int = 25
) -> Set[Triple]:
    """Forward-chain ``rules`` over ``base`` to a fixpoint (or cap)."""
    facts: Set[Triple] = set(base)
    for _ in range(max_iterations):
        new: Set[Triple] = set()
        by_relation: Dict[str, List[Triple]] = defaultdict(list)
        for triple in facts:
            by_relation[triple[0]].append(triple)
        for rule in rules:
            new |= _apply_rule(rule, by_relation) - facts
        if not new:
            break
        facts |= new
    return facts


def _apply_rule(
    rule: WorldRule, by_relation: Dict[str, List[Triple]]
) -> Set[Triple]:
    args = _PATTERN_ARGS[rule.pattern]
    derived: Set[Triple] = set()
    if len(rule.body) == 1:
        (subject_var, object_var) = args[0]
        for _, subject, obj in by_relation.get(rule.body[0], ()):  # q(s, o)
            binding = {subject_var: subject, object_var: obj}
            derived.add((rule.head, binding["x"], binding["y"]))
        return derived

    # two-atom body: index the second atom by its z position
    q_args, r_args = args
    q_rel, r_rel = rule.body
    r_z_pos = r_args.index("z")
    r_index: Dict[str, List[Triple]] = defaultdict(list)
    for triple in by_relation.get(r_rel, ()):
        r_index[triple[1 + r_z_pos]].append(triple)
    q_z_pos = q_args.index("z")
    for q_triple in by_relation.get(q_rel, ()):
        z_value = q_triple[1 + q_z_pos]
        binding_q = {q_args[0]: q_triple[1], q_args[1]: q_triple[2]}
        for r_triple in r_index.get(z_value, ()):
            binding = dict(binding_q)
            binding[r_args[0]] = r_triple[1]
            binding[r_args[1]] = r_triple[2]
            if binding["x"] != binding["y"]:
                derived.add((rule.head, binding["x"], binding["y"]))
    return derived


@dataclass
class WorldConfig:
    """Size knobs for the sampled world."""

    n_countries: int = 8
    n_cities_per_country: int = 6
    n_districts_per_city: int = 2
    n_people: int = 300
    n_organizations: int = 40
    seed: int = 0
    #: fraction of people who also live somewhere other than where born
    p_second_residence: float = 0.25


class World:
    """A consistent ground-truth world with typed entities."""

    def __init__(self, config: Optional[WorldConfig] = None) -> None:
        self.config = config or WorldConfig()
        self.rng = random.Random(self.config.seed)
        self.countries: List[str] = []
        self.cities: List[str] = []
        self.districts: List[str] = []
        self.people: List[str] = []
        self.organizations: List[str] = []
        self.true_facts: Set[Triple] = set()
        #: located_in parent map (district -> city -> country)
        self.parent: Dict[str, str] = {}
        self._build()
        self.sound_rules = self._sound_rules()
        self.plausible_rules = self._plausible_rules()
        self._sound_closure: Optional[FrozenSet[Triple]] = None
        self._plausible_closure: Optional[FrozenSet[Triple]] = None

    # -- construction --------------------------------------------------------

    def _build(self) -> None:
        cfg = self.config
        rng = self.rng
        for country_index in range(cfg.n_countries):
            country = f"country_{country_index}"
            self.countries.append(country)
            country_cities = []
            for city_index in range(cfg.n_cities_per_country):
                city = f"city_{country_index}_{city_index}"
                self.cities.append(city)
                country_cities.append(city)
                self.parent[city] = country
                self.true_facts.add(("located_in", city, country))
                for district_index in range(cfg.n_districts_per_city):
                    district = f"district_{country_index}_{city_index}_{district_index}"
                    self.districts.append(district)
                    self.parent[district] = city
                    self.true_facts.add(("located_in", district, city))
            capital = country_cities[0]
            self.true_facts.add(("capital_of", capital, country))

        for person_index in range(cfg.n_people):
            person = f"person_{person_index}"
            self.people.append(person)
            birth_place = rng.choice(self.districts + self.cities)
            self.true_facts.add(("born_in", person, birth_place))
            birth_city = self._city_of(birth_place)
            self.true_facts.add(("grow_up_in", person, birth_city))
            self.true_facts.add(("live_in", person, birth_city))
            if rng.random() < cfg.p_second_residence:
                other_city = rng.choice(self.cities)
                self.true_facts.add(("live_in", person, other_city))

        for org_index in range(cfg.n_organizations):
            org = f"org_{org_index}"
            self.organizations.append(org)
            home = rng.choice(self.cities)
            self.true_facts.add(("headquartered_in", org, home))
            for person in rng.sample(self.people, k=min(5, len(self.people))):
                self.true_facts.add(("works_for", person, org))

    def _city_of(self, place: str) -> str:
        return self.parent.get(place, place) if place.startswith("district") else place

    # -- classes ---------------------------------------------------------------

    def classes_of(self, entity: str) -> Tuple[str, ...]:
        """The classes an entity belongs to (specific first).

        Cities and countries are also Places — the "general types" the
        paper identifies as a (small) source of constraint violations.
        """
        if entity.startswith("person"):
            return ("Person",)
        if entity.startswith("city"):
            return ("City", "Place")
        if entity.startswith("country"):
            return ("Country", "Place")
        if entity.startswith("district"):
            return ("Place",)
        if entity.startswith("org"):
            return ("Organization",)
        return ("Thing",)

    def class_map(self) -> Dict[str, List[str]]:
        members: Dict[str, List[str]] = defaultdict(list)
        for entity in itertools.chain(
            self.people, self.cities, self.countries, self.districts, self.organizations
        ):
            for class_name in self.classes_of(entity):
                members[class_name].append(entity)
        return dict(members)

    # -- rules --------------------------------------------------------------------

    def _sound_rules(self) -> List[WorldRule]:
        return [
            # location transitivity: in a district of a city -> in the city
            WorldRule("located_in", ("located_in", "located_in"), pattern=4, kind=SOUND),
            WorldRule("born_in", ("born_in", "located_in"), pattern=4, kind=SOUND),
            WorldRule("live_in", ("live_in", "located_in"), pattern=4, kind=SOUND),
            WorldRule("grow_up_in", ("grow_up_in", "located_in"), pattern=4, kind=SOUND),
            WorldRule("headquartered_in", ("headquartered_in", "located_in"), pattern=4, kind=SOUND),
            # a capital is located in its country
            WorldRule("located_in", ("capital_of",), pattern=1, kind=SOUND),
        ]

    def _plausible_rules(self) -> List[WorldRule]:
        """Rules whose conclusions a human judge would *accept* as likely
        (the paper accepts "lives in Baltimore because born there").

        Deliberately excludes people-based geography rules such as
        located_in(x,y) <- live_in(z,x) ∧ live_in(z,y): a judge knows
        Baltimore is not in Berlin, however someone's residences fall.
        Such rules appear in the *learned* rule set instead, where their
        conclusions are judged against these closures.
        """
        return [
            WorldRule("live_in", ("born_in",), pattern=1, kind=PLAUSIBLE),
            WorldRule("live_in", ("grow_up_in",), pattern=1, kind=PLAUSIBLE),
            WorldRule("grow_up_in", ("born_in",), pattern=1, kind=PLAUSIBLE),
            WorldRule("born_in", ("grow_up_in",), pattern=1, kind=PLAUSIBLE),
        ]

    # -- closures -------------------------------------------------------------------

    def sound_closure(self) -> FrozenSet[Triple]:
        if self._sound_closure is None:
            self._sound_closure = frozenset(
                apply_rules(self.true_facts, self.sound_rules)
            )
        return self._sound_closure

    def plausible_closure(self) -> FrozenSet[Triple]:
        if self._plausible_closure is None:
            rules = self.sound_rules + self.plausible_rules
            self._plausible_closure = frozenset(
                apply_rules(self.true_facts, rules)
            )
        return self._plausible_closure

    def judge_triple(self, triple: Triple) -> str:
        """'correct' | 'probable' | 'incorrect' for a real-entity triple."""
        if triple in self.sound_closure():
            return "correct"
        if triple in self.plausible_closure():
            return "probable"
        return "incorrect"
