"""A stdlib JSON HTTP API over :class:`~repro.serve.engine.KBService`.

Endpoints::

    GET  /healthz              liveness + current generation ("draining"
                               once shutdown has begun; never gated)
    GET  /stats                service metrics (counters, cache, latency)
    GET  /explain              static plan report for the current KB
    GET  /facts?relation=&subject=&object=&min_probability=
    POST /evidence             {"facts": [...], "flush": false}
    POST /rules                {"rules": [...]} — gated by static analysis
    POST /snapshot             write the configured snapshot file
    POST /dead-letter/retry    requeue dead-lettered evidence batches

``ThreadingHTTPServer`` gives one thread per request, which is exactly
the concurrency shape KBService is built for: many readers on the read
lock, ingest serialized through the micro-batch queue.

Admission control (see :class:`~repro.serve.config.ServeConfig`): when
auth tokens are configured every endpoint except ``/healthz`` requires
``Authorization: Bearer <token>`` (else 401); when a rate limit is
configured each client — keyed by its bearer token, falling back to the
remote address — draws from a token bucket (else 429 + ``Retry-After``).
Request bodies are capped (413 past the limit), and handler work runs
under a wall-clock budget (504 past it).
"""

from __future__ import annotations

import hmac
import json
import math
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..analyze import AnalysisError
from ..core.clauses import Atom, ClauseError, HornClause
from ..core.model import Fact, KnowledgeBaseError
from .config import ServeConfig
from .engine import KBService
from .ingest import IngestOverflow
from .limiter import RateLimiter
from .logging import NULL_LOGGER, JsonLogger
from .snapshot import save_snapshot

FACT_FIELDS = ("relation", "subject", "subject_class", "object", "object_class")

#: endpoints that stay reachable without auth and outside rate limits —
#: load balancers and process supervisors must always see liveness
OPEN_PATHS = frozenset({"/healthz"})

#: what one route handler returns: (HTTP status, JSON payload)
Response = Tuple[int, dict]


class BadRequest(ValueError):
    """Client error carrying the HTTP status (and headers) to answer with."""

    def __init__(
        self,
        message: str,
        status: int = 400,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.headers: Dict[str, str] = headers or {}


def fact_to_dict(fact: Fact, probability: Optional[float]) -> dict:
    return {
        "relation": fact.relation,
        "subject": fact.subject,
        "subject_class": fact.subject_class,
        "object": fact.object,
        "object_class": fact.object_class,
        "weight": fact.weight,
        "probability": probability,
    }


def fact_from_dict(payload: dict) -> Fact:
    if not isinstance(payload, dict):
        raise BadRequest(f"each fact must be an object, got {type(payload).__name__}")
    missing = [name for name in FACT_FIELDS if name not in payload]
    if missing:
        raise BadRequest(f"fact missing fields: {', '.join(missing)}")
    empty = [name for name in FACT_FIELDS if str(payload[name]).strip() == ""]
    if empty:
        raise BadRequest(f"fact fields must be non-empty: {', '.join(empty)}")
    weight = payload.get("weight")
    if weight is not None:
        try:
            weight = float(weight)
        except (TypeError, ValueError):
            raise BadRequest(f"weight must be a number, got {weight!r}") from None
    return Fact(
        relation=str(payload["relation"]),
        subject=str(payload["subject"]),
        subject_class=str(payload["subject_class"]),
        object=str(payload["object"]),
        object_class=str(payload["object_class"]),
        weight=weight,
    )


def _atom_from_dict(payload: object, role: str) -> Atom:
    if not isinstance(payload, dict):
        raise BadRequest(f"{role} must be an object, got {type(payload).__name__}")
    relation = payload.get("relation")
    args = payload.get("args")
    if not relation or not isinstance(relation, str):
        raise BadRequest(f"{role} needs a non-empty 'relation' string")
    if not isinstance(args, list) or len(args) != 2:
        raise BadRequest(f"{role} needs 'args': a list of exactly 2 variables")
    return Atom(relation, (str(args[0]), str(args[1])))


def rule_from_dict(payload: dict) -> HornClause:
    """Parse ``{"weight", "head", "body", "classes"[, "score"]}``."""
    if not isinstance(payload, dict):
        raise BadRequest(f"each rule must be an object, got {type(payload).__name__}")
    try:
        weight = float(payload["weight"])
    except KeyError:
        raise BadRequest("rule missing 'weight'") from None
    except (TypeError, ValueError):
        raise BadRequest(
            f"rule weight must be a number, got {payload['weight']!r}"
        ) from None
    head = _atom_from_dict(payload.get("head"), "rule head")
    raw_body = payload.get("body")
    if not isinstance(raw_body, list) or not raw_body:
        raise BadRequest("rule 'body' must be a non-empty list of atoms")
    body = [
        _atom_from_dict(item, f"body atom {index}")
        for index, item in enumerate(raw_body)
    ]
    classes = payload.get("classes")
    if not isinstance(classes, dict):
        raise BadRequest("rule 'classes' must map each variable to a class")
    try:
        score = float(payload.get("score", 1.0))
    except (TypeError, ValueError):
        raise BadRequest(
            f"rule score must be a number, got {payload['score']!r}"
        ) from None
    return HornClause.make(
        head,
        body,
        weight,
        {str(var): str(cls) for var, cls in classes.items()},
        score=score,
    )


class KBServer(ThreadingHTTPServer):
    """The HTTP front end; owns nothing but references to the service."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: KBService,
        snapshot_path: Optional[str] = None,
        quiet: bool = True,
        config: Optional[ServeConfig] = None,
        logger: Optional[JsonLogger] = None,
    ) -> None:
        super().__init__(address, KBRequestHandler)
        self.service = service
        self.snapshot_path = snapshot_path
        self.quiet = quiet
        self.config = config or ServeConfig()
        self.logger = logger if logger is not None else NULL_LOGGER
        #: flipped by the graceful-shutdown path: /healthz reports it and
        #: POST /evidence refuses new work while the queue drains
        self.draining = False
        self.limiter: Optional[RateLimiter] = (
            RateLimiter(self.config.rate_limit, self.config.rate_burst)
            if self.config.rate_limit_enabled
            else None
        )


class KBRequestHandler(BaseHTTPRequestHandler):
    server: KBServer

    # -- plumbing ------------------------------------------------------------

    def _respond(
        self, status: int, payload: dict, headers: Optional[Dict[str, str]] = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        """Read and parse the request body, enforcing the byte cap.

        Malformed or negative ``Content-Length`` is the client's error
        (400), never a stack trace; a length past ``max_body_bytes``
        answers 413 before a single body byte is read, so one oversized
        POST cannot balloon the server's memory.
        """
        raw_length = self.headers.get("Content-Length")
        try:
            length = int(raw_length) if raw_length is not None else 0
        except (TypeError, ValueError):
            raise BadRequest(
                f"malformed Content-Length: {raw_length!r}"
            ) from None
        if length < 0:
            raise BadRequest(f"malformed Content-Length: {raw_length!r}")
        cap = self.server.config.max_body_bytes
        if cap and length > cap:
            self.server.service.metrics.record_oversize()
            raise BadRequest(
                f"request body of {length} bytes exceeds the "
                f"{cap}-byte limit",
                status=413,
            )
        try:
            raw = self.rfile.read(length) if length else b""
        except socket.timeout:
            raise BadRequest("timed out reading request body", status=408) from None
        if not raw:
            raise BadRequest("empty request body")
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as error:
            raise BadRequest(f"invalid JSON: {error}") from None
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        return payload

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)

    # -- admission control ---------------------------------------------------

    def _bearer_token(self) -> Optional[str]:
        header = self.headers.get("Authorization", "")
        if header.startswith("Bearer "):
            token = header[len("Bearer "):].strip()
            return token or None
        return None

    def _check_auth(self, path: str) -> None:
        tokens = self.server.config.auth_tokens
        if not tokens or path in OPEN_PATHS:
            return
        presented = self._bearer_token()
        if presented is not None:
            expected = presented.encode("utf-8", "surrogateescape")
            for token in tokens:
                if hmac.compare_digest(expected, token.encode("utf-8")):
                    return
        self.server.service.metrics.record_auth_failure()
        raise BadRequest(
            "missing or invalid bearer token",
            status=401,
            headers={"WWW-Authenticate": 'Bearer realm="probkb"'},
        )

    def _check_rate_limit(self, path: str) -> None:
        limiter = self.server.limiter
        if limiter is None or path in OPEN_PATHS:
            return
        # authenticated clients are limited per credential; anonymous
        # ones per remote address
        key = self._bearer_token() or self.client_address[0]
        allowed, retry_after = limiter.check(key)
        if allowed:
            return
        self.server.service.metrics.record_rate_limited()
        whole_seconds = max(1, math.ceil(retry_after))
        raise BadRequest(
            f"rate limit exceeded; retry in {retry_after:.2f}s",
            status=429,
            headers={"Retry-After": str(whole_seconds)},
        )

    def _call_with_timeout(self, handler: Callable[[], Response]) -> Response:
        """Run one route handler under the configured wall-clock budget.

        The handler runs in a helper thread so the request thread can
        give up on it; a timed-out handler keeps running detached (its
        writes are still correctly serialized by the service locks) but
        the client gets a prompt 504 instead of a hung socket.
        """
        budget = self.server.config.request_timeout
        if budget <= 0:
            return handler()
        outcome: Dict[str, object] = {}

        def run() -> None:
            try:
                outcome["result"] = handler()
            except BaseException as error:  # re-raised in the request thread
                outcome["error"] = error

        thread = threading.Thread(target=run, name="probkb-handler", daemon=True)
        thread.start()
        thread.join(budget)
        if thread.is_alive():
            self.server.service.metrics.record_timeout()
            raise BadRequest(
                f"request exceeded the {budget:.1f}s handler budget", status=504
            )
        error = outcome.get("error")
        if isinstance(error, BaseException):
            raise error
        result = outcome["result"]
        assert isinstance(result, tuple)
        return result

    # -- dispatch ------------------------------------------------------------

    def do_GET(self) -> None:
        self._handle("GET")

    def do_POST(self) -> None:
        self._handle("POST")

    def _handle(self, method: str) -> None:
        started = time.perf_counter()
        url = urlparse(self.path)
        server = self.server
        status, payload = 500, {"error": "internal error"}
        headers: Dict[str, str] = {}
        try:
            self._check_auth(url.path)
            self._check_rate_limit(url.path)
            handler = self._route(method, url.path, url.query)
            status, payload = self._call_with_timeout(handler)
        except BadRequest as error:
            status, payload, headers = error.status, {"error": str(error)}, error.headers
        except Exception as error:  # answer JSON, never a hung socket
            status, payload = 500, {"error": f"internal error: {error!r}"}
            server.logger.log(
                "error", method=method, path=url.path, error=repr(error)
            )
        try:
            self._respond(status, payload, headers)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to answer
        server.logger.log(
            "request",
            method=method,
            path=url.path,
            status=status,
            latency_ms=round((time.perf_counter() - started) * 1000, 3),
            client=self.client_address[0],
            generation=server.service.probkb.generation,
            queue_depth=server.service.queue.depth,
        )

    def _route(
        self, method: str, path: str, query: str
    ) -> Callable[[], Response]:
        """Resolve one request to a zero-argument handler closure.

        Request *reading* (body, params) happens here, in the request
        thread; the returned closure does only service work, which is
        what the handler budget meters.
        """
        service = self.server.service
        if method == "GET":
            params = parse_qs(query)
            if path == "/healthz":
                return self._get_healthz
            if path == "/stats":
                return lambda: (200, service.stats())
            if path == "/explain":
                return lambda: (200, service.explain())
            if path == "/facts":
                return lambda: self._get_facts(params)
        else:
            if path == "/evidence":
                evidence = self._read_json()
                return lambda: self._post_evidence(evidence)
            if path == "/rules":
                rules = self._read_json()
                return lambda: self._post_rules(rules)
            if path == "/snapshot":
                return self._post_snapshot
            if path == "/dead-letter/retry":
                return self._post_dead_letter_retry
        raise BadRequest(f"unknown path {path!r}", status=404)

    # -- routes --------------------------------------------------------------

    def _get_healthz(self) -> Response:
        server = self.server
        return 200, {
            "status": "draining" if server.draining else "ok",
            "generation": server.service.generation,
            "queue_depth": server.service.queue.depth,
        }

    def _get_facts(self, params: Dict[str, List[str]]) -> Response:
        def single(name: str) -> Optional[str]:
            values = params.get(name)
            if not values:
                return None
            if len(values) > 1:
                raise BadRequest(f"parameter {name!r} given more than once")
            return values[0]

        min_probability = 0.0
        raw = single("min_probability")
        if raw is not None:
            try:
                min_probability = float(raw)
            except ValueError:
                raise BadRequest(
                    f"min_probability must be a number, got {raw!r}"
                ) from None
        unknown = set(params) - {
            "relation", "subject", "object", "min_probability"
        }
        if unknown:
            raise BadRequest(f"unknown parameters: {', '.join(sorted(unknown))}")
        result = self.server.service.query(
            relation=single("relation"),
            subject=single("subject"),
            object=single("object"),
            min_probability=min_probability,
        )
        return 200, {
            "generation": result.generation,
            "cache_hit": result.cache_hit,
            "count": len(result.facts),
            "facts": [
                fact_to_dict(fact, probability)
                for fact, probability in result.facts
            ],
        }

    def _post_evidence(self, payload: dict) -> Response:
        if self.server.draining:
            raise BadRequest("service is draining; not accepting evidence",
                             status=503)
        raw_facts = payload.get("facts")
        if not isinstance(raw_facts, list) or not raw_facts:
            raise BadRequest("'facts' must be a non-empty list")
        facts = [fact_from_dict(item) for item in raw_facts]
        flush = bool(payload.get("flush", False))
        service = self.server.service
        try:
            depth = service.ingest(facts, flush=flush)
        except IngestOverflow as error:
            raise BadRequest(str(error), status=503) from None
        return 202, {
            "accepted": len(facts),
            "queue_depth": depth,
            "flushed": flush,
            "generation": service.generation,
        }

    def _post_rules(self, payload: dict) -> Response:
        """Ingest deductive rules, gated by the KB's static analysis.

        Responds 422 (with the findings) when the analysis gate rejects
        the batch, 400 for rules the relational model cannot represent.
        """
        raw_rules = payload.get("rules")
        if not isinstance(raw_rules, list) or not raw_rules:
            raise BadRequest("'rules' must be a non-empty list")
        rules = [rule_from_dict(item) for item in raw_rules]
        service = self.server.service
        try:
            new_facts = service.add_rules(rules)
        except AnalysisError as error:
            return 422, {
                "error": str(error),
                "findings": [f.to_dict() for f in error.report.errors],
            }
        except (ClauseError, KnowledgeBaseError) as error:
            raise BadRequest(str(error)) from None
        return 200, {
            "added": len(rules),
            "new_facts": new_facts,
            "generation": service.generation,
        }

    def _post_dead_letter_retry(self) -> Response:
        """Operator re-ingest: drain the dead-letter list back through
        the evidence queue.  Failed batches get the normal retry +
        dead-letter treatment again; 503 (queue full) loses nothing —
        the facts stay dead-lettered for a later attempt."""
        if self.server.draining:
            raise BadRequest(
                "service is draining; not accepting evidence", status=503
            )
        service = self.server.service
        try:
            requeued, depth = service.retry_dead_letter()
        except IngestOverflow as error:
            raise BadRequest(str(error), status=503) from None
        return 200, {
            "requeued": requeued,
            "queue_depth": depth,
            "dead_letter": service.worker.dead_letter_stats(),
            "generation": service.generation,
        }

    def _post_snapshot(self) -> Response:
        server = self.server
        if server.snapshot_path is None:
            raise BadRequest("no snapshot path configured", status=409)
        server.service.flush()
        with server.service.lock.read_locked():
            path = save_snapshot(server.service.probkb, server.snapshot_path)
        server.service.metrics.record_snapshot()
        return 200, {"path": path}


def make_server(
    service: KBService,
    host: str = "127.0.0.1",
    port: int = 8080,
    snapshot_path: Optional[str] = None,
    quiet: bool = True,
    config: Optional[ServeConfig] = None,
    logger: Optional[JsonLogger] = None,
) -> KBServer:
    """Bind (but do not start) the HTTP server; port 0 picks a free port."""
    return KBServer(
        (host, port),
        service,
        snapshot_path=snapshot_path,
        quiet=quiet,
        config=config,
        logger=logger,
    )
