"""A stdlib JSON HTTP API over :class:`~repro.serve.engine.KBService`.

Endpoints::

    GET  /healthz              liveness + current generation
    GET  /stats                service metrics (counters, cache, latency)
    GET  /explain              static plan report for the current KB
    GET  /facts?relation=&subject=&object=&min_probability=
    POST /evidence             {"facts": [...], "flush": false}
    POST /rules                {"rules": [...]} — gated by static analysis
    POST /snapshot             write the configured snapshot file

``ThreadingHTTPServer`` gives one thread per request, which is exactly
the concurrency shape KBService is built for: many readers on the read
lock, ingest serialized through the micro-batch queue.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..analyze import AnalysisError
from ..core.clauses import Atom, ClauseError, HornClause
from ..core.model import Fact, KnowledgeBaseError
from .engine import KBService
from .ingest import IngestOverflow
from .snapshot import save_snapshot

FACT_FIELDS = ("relation", "subject", "subject_class", "object", "object_class")


class BadRequest(ValueError):
    """Client error carrying the HTTP status to answer with."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def fact_to_dict(fact: Fact, probability: Optional[float]) -> dict:
    return {
        "relation": fact.relation,
        "subject": fact.subject,
        "subject_class": fact.subject_class,
        "object": fact.object,
        "object_class": fact.object_class,
        "weight": fact.weight,
        "probability": probability,
    }


def fact_from_dict(payload: dict) -> Fact:
    if not isinstance(payload, dict):
        raise BadRequest(f"each fact must be an object, got {type(payload).__name__}")
    missing = [name for name in FACT_FIELDS if name not in payload]
    if missing:
        raise BadRequest(f"fact missing fields: {', '.join(missing)}")
    empty = [name for name in FACT_FIELDS if str(payload[name]).strip() == ""]
    if empty:
        raise BadRequest(f"fact fields must be non-empty: {', '.join(empty)}")
    weight = payload.get("weight")
    if weight is not None:
        try:
            weight = float(weight)
        except (TypeError, ValueError):
            raise BadRequest(f"weight must be a number, got {weight!r}")
    return Fact(
        relation=str(payload["relation"]),
        subject=str(payload["subject"]),
        subject_class=str(payload["subject_class"]),
        object=str(payload["object"]),
        object_class=str(payload["object_class"]),
        weight=weight,
    )


def _atom_from_dict(payload: dict, role: str) -> Atom:
    if not isinstance(payload, dict):
        raise BadRequest(f"{role} must be an object, got {type(payload).__name__}")
    relation = payload.get("relation")
    args = payload.get("args")
    if not relation or not isinstance(relation, str):
        raise BadRequest(f"{role} needs a non-empty 'relation' string")
    if not isinstance(args, list) or len(args) != 2:
        raise BadRequest(f"{role} needs 'args': a list of exactly 2 variables")
    return Atom(relation, (str(args[0]), str(args[1])))


def rule_from_dict(payload: dict) -> HornClause:
    """Parse ``{"weight", "head", "body", "classes"[, "score"]}``."""
    if not isinstance(payload, dict):
        raise BadRequest(f"each rule must be an object, got {type(payload).__name__}")
    try:
        weight = float(payload["weight"])
    except KeyError:
        raise BadRequest("rule missing 'weight'") from None
    except (TypeError, ValueError):
        raise BadRequest(f"rule weight must be a number, got {payload['weight']!r}")
    head = _atom_from_dict(payload.get("head"), "rule head")
    raw_body = payload.get("body")
    if not isinstance(raw_body, list) or not raw_body:
        raise BadRequest("rule 'body' must be a non-empty list of atoms")
    body = [
        _atom_from_dict(item, f"body atom {index}")
        for index, item in enumerate(raw_body)
    ]
    classes = payload.get("classes")
    if not isinstance(classes, dict):
        raise BadRequest("rule 'classes' must map each variable to a class")
    try:
        score = float(payload.get("score", 1.0))
    except (TypeError, ValueError):
        raise BadRequest(f"rule score must be a number, got {payload['score']!r}")
    return HornClause.make(
        head,
        body,
        weight,
        {str(var): str(cls) for var, cls in classes.items()},
        score=score,
    )


class KBServer(ThreadingHTTPServer):
    """The HTTP front end; owns nothing but references to the service."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: KBService,
        snapshot_path: Optional[str] = None,
        quiet: bool = True,
    ) -> None:
        super().__init__(address, KBRequestHandler)
        self.service = service
        self.snapshot_path = snapshot_path
        self.quiet = quiet


class KBRequestHandler(BaseHTTPRequestHandler):
    server: KBServer

    # -- plumbing ------------------------------------------------------------

    def _respond(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._respond(status, {"error": message})

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise BadRequest("empty request body")
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as error:
            raise BadRequest(f"invalid JSON: {error}") from None
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        return payload

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.server.quiet:
            super().log_message(format, *args)

    # -- routes ----------------------------------------------------------------

    def do_GET(self) -> None:
        url = urlparse(self.path)
        try:
            if url.path == "/healthz":
                self._get_healthz()
            elif url.path == "/stats":
                self._respond(200, self.server.service.stats())
            elif url.path == "/explain":
                self._respond(200, self.server.service.explain())
            elif url.path == "/facts":
                self._get_facts(parse_qs(url.query))
            else:
                self._error(404, f"unknown path {url.path!r}")
        except BadRequest as error:
            self._error(error.status, str(error))

    def do_POST(self) -> None:
        url = urlparse(self.path)
        try:
            if url.path == "/evidence":
                self._post_evidence()
            elif url.path == "/rules":
                self._post_rules()
            elif url.path == "/snapshot":
                self._post_snapshot()
            else:
                self._error(404, f"unknown path {url.path!r}")
        except BadRequest as error:
            self._error(error.status, str(error))

    def _get_healthz(self) -> None:
        service = self.server.service
        self._respond(
            200, {"status": "ok", "generation": service.generation}
        )

    def _get_facts(self, params: dict) -> None:
        def single(name: str) -> Optional[str]:
            values = params.get(name)
            if not values:
                return None
            if len(values) > 1:
                raise BadRequest(f"parameter {name!r} given more than once")
            return values[0]

        min_probability = 0.0
        raw = single("min_probability")
        if raw is not None:
            try:
                min_probability = float(raw)
            except ValueError:
                raise BadRequest(f"min_probability must be a number, got {raw!r}")
        unknown = set(params) - {
            "relation", "subject", "object", "min_probability"
        }
        if unknown:
            raise BadRequest(f"unknown parameters: {', '.join(sorted(unknown))}")
        result = self.server.service.query(
            relation=single("relation"),
            subject=single("subject"),
            object=single("object"),
            min_probability=min_probability,
        )
        self._respond(
            200,
            {
                "generation": result.generation,
                "cache_hit": result.cache_hit,
                "count": len(result.facts),
                "facts": [
                    fact_to_dict(fact, probability)
                    for fact, probability in result.facts
                ],
            },
        )

    def _post_evidence(self) -> None:
        payload = self._read_json()
        raw_facts = payload.get("facts")
        if not isinstance(raw_facts, list) or not raw_facts:
            raise BadRequest("'facts' must be a non-empty list")
        facts = [fact_from_dict(item) for item in raw_facts]
        flush = bool(payload.get("flush", False))
        service = self.server.service
        try:
            depth = service.ingest(facts, flush=flush)
        except IngestOverflow as error:
            raise BadRequest(str(error), status=503) from None
        self._respond(
            202,
            {
                "accepted": len(facts),
                "queue_depth": depth,
                "flushed": flush,
                "generation": service.generation,
            },
        )

    def _post_rules(self) -> None:
        """Ingest deductive rules, gated by the KB's static analysis.

        Responds 422 (with the findings) when the analysis gate rejects
        the batch, 400 for rules the relational model cannot represent.
        """
        payload = self._read_json()
        raw_rules = payload.get("rules")
        if not isinstance(raw_rules, list) or not raw_rules:
            raise BadRequest("'rules' must be a non-empty list")
        rules = [rule_from_dict(item) for item in raw_rules]
        service = self.server.service
        try:
            new_facts = service.add_rules(rules)
        except AnalysisError as error:
            self._respond(
                422,
                {
                    "error": str(error),
                    "findings": [f.to_dict() for f in error.report.errors],
                },
            )
            return
        except (ClauseError, KnowledgeBaseError) as error:
            raise BadRequest(str(error)) from None
        self._respond(
            200,
            {
                "added": len(rules),
                "new_facts": new_facts,
                "generation": service.generation,
            },
        )

    def _post_snapshot(self) -> None:
        server = self.server
        if server.snapshot_path is None:
            raise BadRequest("no snapshot path configured", status=409)
        server.service.flush()
        with server.service.lock.read_locked():
            path = save_snapshot(server.service.probkb, server.snapshot_path)
        server.service.metrics.record_snapshot()
        self._respond(200, {"path": path})


def make_server(
    service: KBService,
    host: str = "127.0.0.1",
    port: int = 8080,
    snapshot_path: Optional[str] = None,
    quiet: bool = True,
) -> KBServer:
    """Bind (but do not start) the HTTP server; port 0 picks a free port."""
    return KBServer((host, port), service, snapshot_path=snapshot_path, quiet=quiet)
