"""Bounded evidence ingest with micro-batching and backpressure.

Regrounding cost is dominated by per-flush overhead, not batch size —
the same observation that drives the paper's batch rule application.  So
the serving layer never applies evidence one fact at a time: producers
enqueue into a bounded queue and a single worker drains it in batches,
flushing when either ``flush_size`` facts are pending or the oldest
pending fact has waited ``flush_interval`` seconds.

Backpressure: when the queue is full, ``put`` blocks the producer (up to
``put_timeout``) instead of buffering unboundedly; a timeout raises
:class:`IngestOverflow`, which the HTTP layer maps to 503.  Admission is
all-or-nothing per batch — a 503 means *none* of the batch was queued,
so the client may retry without duplicating evidence.

Failure policy: a batch whose ``apply`` raises is retried once (the KB
write lock makes transient contention plausible) and then moved to a
bounded dead-letter list — accepted evidence is never silently dropped,
and the drop is visible in ``GET /stats``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.model import Fact
from ..devtools.sanitizer import make_lock
from .logging import NULL_LOGGER, JsonLogger


class IngestOverflow(RuntimeError):
    """The evidence queue stayed full past the producer's timeout."""


@dataclass
class IngestConfig:
    """Tuning knobs for the micro-batching ingest path."""

    max_queue: int = 4096
    flush_size: int = 64
    flush_interval: float = 0.2
    put_timeout: float = 5.0
    #: most facts retained in the dead-letter list (oldest evicted first)
    dead_letter_max: int = 1024

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.flush_size < 1:
            raise ValueError(f"flush_size must be >= 1, got {self.flush_size}")
        if self.flush_interval < 0:
            raise ValueError("flush_interval must be >= 0")
        if self.dead_letter_max < 0:
            raise ValueError(
                f"dead_letter_max must be >= 0, got {self.dead_letter_max}"
            )


def coalesce(facts: Sequence[Fact]) -> List[Fact]:
    """Collapse duplicate fact keys within one batch (last write wins).

    Re-extractions of the same triple arrive often in streaming ingest;
    applying them once per batch keeps the anti-join guard's work
    proportional to *distinct* new knowledge.
    """
    by_key: Dict[object, Fact] = {}
    for fact in facts:
        by_key[fact.key] = fact
    return list(by_key.values())


class EvidenceQueue:
    """A bounded FIFO of pending evidence facts.

    Each entry remembers when it was enqueued, so the age trigger always
    measures the oldest fact *still in the queue* — a partial drain must
    not restart the clock for the facts it left behind.
    """

    def __init__(self, config: IngestConfig) -> None:
        self.config = config
        self._lock = make_lock("EvidenceQueue._lock")
        self._items: List[Tuple[float, Fact]] = []  # guarded by: self._lock
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)

    def put(self, facts: Sequence[Fact], timeout: Optional[float] = None) -> int:
        """Enqueue a batch atomically, blocking while there is no room.

        The whole batch is admitted or none of it: capacity is reserved
        up front, so a producer that sees :class:`IngestOverflow` knows
        the queue depth is exactly what it was before the call and can
        retry without duplicating a partially-admitted prefix.  A batch
        larger than ``max_queue`` can never fit and fails immediately.

        Returns the queue depth after the enqueue.
        """
        count = len(facts)
        if count > self.config.max_queue:
            raise IngestOverflow(
                f"batch of {count} facts can never fit the evidence queue "
                f"(max_queue={self.config.max_queue}); split the batch"
            )
        if timeout is None:
            timeout = self.config.put_timeout
        deadline = time.monotonic() + timeout
        with self._lock:
            while len(self._items) + count > self.config.max_queue:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._not_full.wait(remaining):
                    raise IngestOverflow(
                        f"evidence queue full ({self.config.max_queue}) "
                        f"for {timeout:.1f}s"
                    )
            now = time.monotonic()
            self._items.extend((now, fact) for fact in facts)
            if count:
                self._not_empty.notify_all()
            return len(self._items)

    def drain(self, max_items: Optional[int] = None) -> List[Fact]:
        """Dequeue up to ``max_items`` facts (all, if None)."""
        with self._lock:
            if max_items is None or max_items >= len(self._items):
                taken, self._items = self._items, []
            else:
                taken = self._items[:max_items]
                self._items = self._items[max_items:]
            if taken:
                self._not_full.notify_all()
            return [fact for _, fact in taken]

    def oldest_age(self) -> Optional[float]:
        """Seconds the oldest *remaining* fact has been queued, if any."""
        with self._lock:
            if not self._items:
                return None
            return time.monotonic() - self._items[0][0]

    def wait_ready(self, stop: threading.Event) -> bool:
        """Block until a flush is due (size or age trigger) or ``stop``.

        Returns True when there is something to flush.
        """
        config = self.config
        with self._lock:
            while not stop.is_set():
                if len(self._items) >= config.flush_size:
                    return True
                if self._items:
                    age = time.monotonic() - self._items[0][0]
                    if age >= config.flush_interval:
                        return True
                    self._not_empty.wait(config.flush_interval - age)
                else:
                    self._not_empty.wait(0.5)
            return bool(self._items)

    def wake(self) -> None:
        """Wake any thread blocked in :meth:`wait_ready` (shutdown path)."""
        with self._lock:
            self._not_empty.notify_all()
            self._not_full.notify_all()

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._items)


class IngestWorker:
    """The single consumer thread that turns queued facts into flushes.

    ``apply`` receives a coalesced batch and is the only place evidence
    enters the KB — one writer means flushes are naturally serialized.
    """

    def __init__(
        self,
        queue: EvidenceQueue,
        apply: Callable[[List[Fact]], None],
        on_drop: Optional[Callable[[int], None]] = None,
        logger: Optional[JsonLogger] = None,
    ) -> None:
        self.queue = queue
        self.apply = apply
        self.on_drop = on_drop
        self.logger = logger if logger is not None else NULL_LOGGER
        self._flush_lock = make_lock("IngestWorker._flush_lock")
        self._dead_letter_lock = make_lock("IngestWorker._dead_letter_lock")
        self.flushes = 0  # guarded by: self._flush_lock
        self.retries = 0  # guarded by: self._flush_lock
        self.last_error: Optional[BaseException] = None
        self.dead_letter: List[Fact] = []  # guarded by: self._dead_letter_lock
        self.dead_letter_batches = 0  # guarded by: self._dead_letter_lock
        self.dead_letter_evicted = 0  # guarded by: self._dead_letter_lock
        self._stop = threading.Event()
        self._idle = threading.Event()
        self._idle.set()
        self._thread = threading.Thread(
            target=self._run, name="probkb-ingest", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self, drain: bool = True) -> None:
        """Stop the worker; with ``drain`` flush whatever is still queued."""
        self._stop.set()
        self.queue.wake()
        if self._thread.is_alive():
            self._thread.join()
        if drain:
            self.flush()

    def _run(self) -> None:
        while self.queue.wait_ready(self._stop):
            try:
                self._flush_once(self.queue.config.flush_size)
            except Exception as error:
                # _apply_with_retry already catches apply failures; this
                # guards the drain/coalesce machinery itself so the only
                # ingest worker can never die silently mid-service (RC005)
                self.last_error = error
                self.logger.log(
                    "ingest_worker_error",
                    error=repr(error),
                    queue_depth=self.queue.depth,
                )
        # shutdown: leave leftovers for stop(drain=True)

    def _flush_once(self, max_items: Optional[int]) -> int:
        with self._flush_lock:
            batch = coalesce(self.queue.drain(max_items))
            if not batch:
                return 0
            self._idle.clear()
            try:
                self._apply_with_retry(batch)
            finally:
                self._idle.set()
            return len(batch)

    # holds: self._flush_lock
    def _apply_with_retry(self, batch: List[Fact]) -> None:
        """Apply a drained batch; retry once, then dead-letter it.

        Only ``Exception`` is treated as an apply failure —
        ``KeyboardInterrupt``/``SystemExit`` propagate, because hiding an
        interpreter shutdown inside ``last_error`` is how a Ctrl-C turns
        into a hung process.
        """
        try:
            self.apply(batch)
            self.flushes += 1
            return
        except Exception as error:
            self.last_error = error
            self.logger.log(
                "flush_error",
                error=repr(error),
                facts=len(batch),
                retrying=True,
                queue_depth=self.queue.depth,
            )
        self.retries += 1
        try:
            self.apply(batch)
            self.flushes += 1
        except Exception as error:
            self.last_error = error
            self._to_dead_letter(batch, error)

    def _to_dead_letter(self, batch: List[Fact], error: Exception) -> None:
        limit = self.queue.config.dead_letter_max
        with self._dead_letter_lock:
            self.dead_letter_batches += 1
            self.dead_letter.extend(batch)
            overflow = len(self.dead_letter) - limit
            if overflow > 0:
                del self.dead_letter[:overflow]
                self.dead_letter_evicted += overflow
        if self.on_drop is not None:
            self.on_drop(len(batch))
        self.logger.log(
            "dead_letter",
            error=repr(error),
            facts=len(batch),
            queue_depth=self.queue.depth,
        )

    def dead_letter_stats(self) -> Dict[str, int]:
        """Counters for ``GET /stats``: what failed and what was kept."""
        with self._dead_letter_lock:
            return {
                "batches": self.dead_letter_batches,
                "facts": len(self.dead_letter),
                "evicted": self.dead_letter_evicted,
            }

    def take_dead_letter(self) -> List[Fact]:
        """Remove and return the retained dead-letter facts (for replay)."""
        with self._dead_letter_lock:
            taken, self.dead_letter = self.dead_letter, []
            return taken

    def retry_dead_letter(self) -> Tuple[int, int]:
        """Drain the dead-letter list back through the evidence queue.

        The operator's re-ingest path (``POST /dead-letter/retry``): the
        retained facts re-enter the normal micro-batch flow, so they get
        the same coalescing, retry, and — if they fail again — the same
        dead-lettering as fresh evidence.  If the queue cannot take them
        (:class:`IngestOverflow`) the facts are put back at the *front*
        of the dead-letter list (oldest-first order preserved, bounded
        as usual) and the overflow propagates, so nothing is lost.

        Returns ``(facts requeued, queue depth after)``.
        """
        batch = self.take_dead_letter()
        if not batch:
            return 0, self.queue.depth
        try:
            depth = self.queue.put(batch)
        except IngestOverflow:
            limit = self.queue.config.dead_letter_max
            with self._dead_letter_lock:
                self.dead_letter[:0] = batch
                overflow = len(self.dead_letter) - limit
                if overflow > 0:
                    del self.dead_letter[:overflow]
                    self.dead_letter_evicted += overflow
            raise
        self.logger.log(
            "dead_letter_retry", facts=len(batch), queue_depth=depth
        )
        return len(batch), depth

    def flush(self) -> int:
        """Synchronously apply everything queued right now (caller thread).

        Used by tests, shutdown, and ``POST /evidence?flush=1``.
        """
        applied = 0
        while True:
            flushed = self._flush_once(None)
            if not flushed:
                break
            applied += flushed
        return applied
