"""Bounded evidence ingest with micro-batching and backpressure.

Regrounding cost is dominated by per-flush overhead, not batch size —
the same observation that drives the paper's batch rule application.  So
the serving layer never applies evidence one fact at a time: producers
enqueue into a bounded queue and a single worker drains it in batches,
flushing when either ``flush_size`` facts are pending or the oldest
pending fact has waited ``flush_interval`` seconds.

Backpressure: when the queue is full, ``put`` blocks the producer (up to
``put_timeout``) instead of buffering unboundedly; a timeout raises
:class:`IngestOverflow`, which the HTTP layer maps to 503.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..core.model import Fact


class IngestOverflow(RuntimeError):
    """The evidence queue stayed full past the producer's timeout."""


@dataclass
class IngestConfig:
    """Tuning knobs for the micro-batching ingest path."""

    max_queue: int = 4096
    flush_size: int = 64
    flush_interval: float = 0.2
    put_timeout: float = 5.0

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.flush_size < 1:
            raise ValueError(f"flush_size must be >= 1, got {self.flush_size}")
        if self.flush_interval < 0:
            raise ValueError("flush_interval must be >= 0")


def coalesce(facts: Sequence[Fact]) -> List[Fact]:
    """Collapse duplicate fact keys within one batch (last write wins).

    Re-extractions of the same triple arrive often in streaming ingest;
    applying them once per batch keeps the anti-join guard's work
    proportional to *distinct* new knowledge.
    """
    by_key = {}
    for fact in facts:
        by_key[fact.key] = fact
    return list(by_key.values())


class EvidenceQueue:
    """A bounded FIFO of pending evidence facts."""

    def __init__(self, config: IngestConfig) -> None:
        self.config = config
        self._items: List[Fact] = []
        self._oldest_at: Optional[float] = None
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)

    def put(self, facts: Sequence[Fact], timeout: Optional[float] = None) -> int:
        """Enqueue facts, blocking while the queue is full.

        Returns the queue depth after the enqueue.  Raises
        :class:`IngestOverflow` if room does not open up in time.
        """
        if timeout is None:
            timeout = self.config.put_timeout
        deadline = time.monotonic() + timeout
        with self._lock:
            for fact in facts:
                while len(self._items) >= self.config.max_queue:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._not_full.wait(remaining):
                        raise IngestOverflow(
                            f"evidence queue full ({self.config.max_queue}) "
                            f"for {timeout:.1f}s"
                        )
                if self._oldest_at is None:
                    self._oldest_at = time.monotonic()
                self._items.append(fact)
                self._not_empty.notify_all()
            return len(self._items)

    def drain(self, max_items: Optional[int] = None) -> List[Fact]:
        """Dequeue up to ``max_items`` facts (all, if None)."""
        with self._lock:
            if max_items is None or max_items >= len(self._items):
                batch, self._items = self._items, []
            else:
                batch = self._items[:max_items]
                self._items = self._items[max_items:]
            self._oldest_at = time.monotonic() if self._items else None
            if batch:
                self._not_full.notify_all()
            return batch

    def wait_ready(self, stop: threading.Event) -> bool:
        """Block until a flush is due (size or age trigger) or ``stop``.

        Returns True when there is something to flush.
        """
        config = self.config
        with self._lock:
            while not stop.is_set():
                if len(self._items) >= config.flush_size:
                    return True
                if self._items:
                    age = time.monotonic() - (self._oldest_at or 0.0)
                    if age >= config.flush_interval:
                        return True
                    self._not_empty.wait(config.flush_interval - age)
                else:
                    self._not_empty.wait(0.5)
            return bool(self._items)

    def wake(self) -> None:
        """Wake any thread blocked in :meth:`wait_ready` (shutdown path)."""
        with self._lock:
            self._not_empty.notify_all()
            self._not_full.notify_all()

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._items)


class IngestWorker:
    """The single consumer thread that turns queued facts into flushes.

    ``apply`` receives a coalesced batch and is the only place evidence
    enters the KB — one writer means flushes are naturally serialized.
    """

    def __init__(
        self,
        queue: EvidenceQueue,
        apply: Callable[[List[Fact]], None],
    ) -> None:
        self.queue = queue
        self.apply = apply
        self.flushes = 0
        self.last_error: Optional[BaseException] = None
        self._stop = threading.Event()
        self._idle = threading.Event()
        self._idle.set()
        self._flush_lock = threading.Lock()
        self._thread = threading.Thread(
            target=self._run, name="probkb-ingest", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self, drain: bool = True) -> None:
        """Stop the worker; with ``drain`` flush whatever is still queued."""
        self._stop.set()
        self.queue.wake()
        if self._thread.is_alive():
            self._thread.join()
        if drain:
            self.flush()

    def _run(self) -> None:
        while self.queue.wait_ready(self._stop):
            self._flush_once(self.queue.config.flush_size)
        # shutdown: leave leftovers for stop(drain=True)

    def _flush_once(self, max_items: Optional[int]) -> int:
        with self._flush_lock:
            batch = coalesce(self.queue.drain(max_items))
            if not batch:
                return 0
            self._idle.clear()
            try:
                self.apply(batch)
                self.flushes += 1
            except BaseException as error:  # keep serving; surface via stats
                self.last_error = error
            finally:
                self._idle.set()
            return len(batch)

    def flush(self) -> int:
        """Synchronously apply everything queued right now (caller thread).

        Used by tests, shutdown, and ``POST /evidence?flush=1``.
        """
        applied = 0
        while True:
            flushed = self._flush_once(None)
            if not flushed:
                break
            applied += flushed
        return applied
