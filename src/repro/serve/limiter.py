"""Per-client token-bucket rate limiting for the HTTP front end.

Classic token bucket: each client key owns a bucket that refills at
``rate`` tokens/second up to ``burst``; a request spends one token, and
an empty bucket means 429 with a computed ``Retry-After``.  Keys are
whatever the caller identifies clients by — the serving layer uses the
presented bearer token when there is one and the remote address
otherwise, so authenticated clients are limited per credential rather
than per NAT.

Buckets are created lazily and the table is bounded: past
``max_clients`` the least-recently-seen bucket is dropped (a dropped
client simply starts over with a full bucket, which only ever errs in
the client's favour).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Hashable, Tuple

from ..devtools.sanitizer import make_lock


class _Bucket:
    __slots__ = ("tokens", "updated")

    def __init__(self, tokens: float, updated: float) -> None:
        self.tokens = tokens
        self.updated = updated


class RateLimiter:
    """Token buckets keyed per client, safe for concurrent requests."""

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
        max_clients: int = 4096,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0 tokens/second, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        if max_clients < 1:
            raise ValueError(f"max_clients must be >= 1, got {max_clients}")
        self.rate = rate
        self.burst = float(burst)
        self.max_clients = max_clients
        self._clock = clock
        self._lock = make_lock("RateLimiter._lock")
        self._buckets: "OrderedDict[Hashable, _Bucket]" = OrderedDict()  # guarded by: self._lock

    def check(self, key: Hashable) -> Tuple[bool, float]:
        """Admit or reject one request from ``key``.

        Returns ``(allowed, retry_after_seconds)``; ``retry_after`` is
        0.0 when allowed, otherwise the time until one token refills.
        """
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = _Bucket(tokens=self.burst, updated=now)
                self._buckets[key] = bucket
                while len(self._buckets) > self.max_clients:
                    self._buckets.popitem(last=False)
            else:
                elapsed = max(0.0, now - bucket.updated)
                bucket.tokens = min(self.burst, bucket.tokens + elapsed * self.rate)
                bucket.updated = now
                self._buckets.move_to_end(key)
            if bucket.tokens >= 1.0:
                bucket.tokens -= 1.0
                return True, 0.0
            return False, (1.0 - bucket.tokens) / self.rate

    def __len__(self) -> int:
        with self._lock:
            return len(self._buckets)
