"""Serving-layer hardening knobs: one dataclass, env vars, CLI flags.

:class:`ServeConfig` collects everything the HTTP front end needs to
behave like a production data service — authentication, admission
control, resource caps, and structured logging — separate from
:class:`~repro.serve.engine.ServiceConfig`, which tunes the KB engine
behind it.  Resolution order (lowest to highest precedence)::

    dataclass defaults  <  PROBKB_SERVE_* env vars  <  CLI flags

Environment variables (all optional)::

    PROBKB_SERVE_AUTH_TOKEN    comma-separated accepted bearer tokens
    PROBKB_SERVE_RATE_LIMIT    sustained requests/second per client
    PROBKB_SERVE_RATE_BURST    token-bucket burst size
    PROBKB_SERVE_TIMEOUT       per-request handler budget, seconds
    PROBKB_SERVE_MAX_BODY      request-body cap, bytes
    PROBKB_SERVE_LOG_JSON      1/true/yes/on enables JSON request logs
    PROBKB_SERVE_EXPANSION     flush expansion mode: "full" or "delta"
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields, replace
from typing import Callable, Dict, Mapping, Optional, Tuple

_ENV_PREFIX = "PROBKB_SERVE_"

_TRUTHY = frozenset({"1", "true", "yes", "on"})
_FALSY = frozenset({"0", "false", "no", "off", ""})


def _parse_bool(name: str, raw: str) -> bool:
    lowered = raw.strip().lower()
    if lowered in _TRUTHY:
        return True
    if lowered in _FALSY:
        return False
    raise ValueError(f"{name} must be a boolean (1/0, true/false), got {raw!r}")


def _parse_float(name: str, raw: str) -> float:
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None


def _parse_int(name: str, raw: str) -> int:
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None


def _parse_tokens(raw: str) -> Tuple[str, ...]:
    return tuple(token.strip() for token in raw.split(",") if token.strip())


def _parse_expansion(name: str, raw: str) -> str:
    from .engine import EXPANSION_MODES

    lowered = raw.strip().lower()
    if lowered not in EXPANSION_MODES:
        raise ValueError(
            f"{name} must be one of {', '.join(EXPANSION_MODES)}, got {raw!r}"
        )
    return lowered


@dataclass(frozen=True)
class ServeConfig:
    """How the HTTP front end admits, bounds, and logs requests.

    Every limit has an "off" value (empty/zero) so the default config
    behaves exactly like the pre-hardening server except for the body
    cap, which always applies — an unbounded read is never correct.
    """

    #: accepted ``Authorization: Bearer`` tokens; empty tuple = no auth
    auth_tokens: Tuple[str, ...] = ()
    #: sustained requests/second allowed per client; 0 = no rate limit
    rate_limit: float = 0.0
    #: token-bucket capacity (how big a burst one client may fire)
    rate_burst: int = 20
    #: wall-clock budget for one handler, seconds; 0 = no timeout
    request_timeout: float = 30.0
    #: largest accepted request body, bytes; 0 = unlimited (discouraged)
    max_body_bytes: int = 1 << 20
    #: emit one structured JSON log line per request/flush/error
    log_json: bool = False
    #: how ingest flushes refresh the KB: "full" re-expansion (default)
    #: or the incremental "delta" path (:mod:`repro.delta`)
    expansion: str = "full"

    def __post_init__(self) -> None:
        if self.rate_limit < 0:
            raise ValueError(f"rate_limit must be >= 0, got {self.rate_limit}")
        if self.rate_burst < 1:
            raise ValueError(f"rate_burst must be >= 1, got {self.rate_burst}")
        if self.request_timeout < 0:
            raise ValueError(
                f"request_timeout must be >= 0, got {self.request_timeout}"
            )
        if self.max_body_bytes < 0:
            raise ValueError(
                f"max_body_bytes must be >= 0, got {self.max_body_bytes}"
            )
        if any(not token for token in self.auth_tokens):
            raise ValueError("auth tokens must be non-empty strings")
        from .engine import EXPANSION_MODES

        if self.expansion not in EXPANSION_MODES:
            raise ValueError(
                f"expansion must be one of {', '.join(EXPANSION_MODES)}; "
                f"got {self.expansion!r}"
            )

    @property
    def auth_enabled(self) -> bool:
        return bool(self.auth_tokens)

    @property
    def rate_limit_enabled(self) -> bool:
        return self.rate_limit > 0

    @classmethod
    def from_env(cls, env: Optional[Mapping[str, str]] = None) -> "ServeConfig":
        """Build a config from ``PROBKB_SERVE_*`` variables (defaults elsewhere)."""
        if env is None:
            env = os.environ
        parsers: Dict[str, Callable[[str, str], object]] = {
            "AUTH_TOKEN": lambda _name, raw: _parse_tokens(raw),
            "RATE_LIMIT": _parse_float,
            "RATE_BURST": _parse_int,
            "TIMEOUT": _parse_float,
            "MAX_BODY": _parse_int,
            "LOG_JSON": _parse_bool,
            "EXPANSION": _parse_expansion,
        }
        field_for = {
            "AUTH_TOKEN": "auth_tokens",
            "RATE_LIMIT": "rate_limit",
            "RATE_BURST": "rate_burst",
            "TIMEOUT": "request_timeout",
            "MAX_BODY": "max_body_bytes",
            "LOG_JSON": "log_json",
            "EXPANSION": "expansion",
        }
        overrides: Dict[str, object] = {}
        for suffix, parse in parsers.items():
            name = _ENV_PREFIX + suffix
            raw = env.get(name)
            if raw is not None:
                overrides[field_for[suffix]] = parse(name, raw)
        return replace(cls(), **overrides)  # type: ignore[arg-type]

    @classmethod
    def resolve(
        cls, env: Optional[Mapping[str, str]] = None, **overrides: object
    ) -> "ServeConfig":
        """Env-derived config with non-``None`` keyword overrides on top.

        This is what the ``repro serve`` CLI calls: argparse hands every
        hardening flag in with ``None`` meaning "not given on the
        command line", so only explicit flags shadow the environment.
        """
        known = {field.name for field in fields(cls)}
        unknown = set(overrides) - known
        if unknown:
            raise TypeError(f"unknown ServeConfig fields: {', '.join(sorted(unknown))}")
        provided = {
            name: value for name, value in overrides.items() if value is not None
        }
        return replace(cls.from_env(env), **provided)  # type: ignore[arg-type]
