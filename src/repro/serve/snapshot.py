"""Snapshots: persist an expanded KB + marginals, restart warm.

Grounding a large KB to closure is the expensive step; a server that
just restarted should not redo it.  A snapshot stores the *expanded*
fact set (extraction weights kept, inferred facts NULL-weight, exactly
as TΠ holds them), the rules/classes/constraints needed to keep
ingesting, and the materialized marginals (TProb).  Loading bulk-loads
all of it back and skips grounding entirely — the closure is already
present, and incremental ingest picks up from there.

The format is a single JSON document (stable, diffable, backend
agnostic).  For ad-hoc inspection with sqlite tooling there is also
:func:`export_sqlite`, which mirrors the backing tables to a ``.db``
file via the relational layer's sqlite bridge.
"""

from __future__ import annotations

import json
import os
import warnings
from typing import Dict, List, Tuple, Union

from ..core.backends import Backend
from ..core.config import BackendConfig, MPPConfig, build_backend
from ..core.model import Fact, FunctionalConstraint, KnowledgeBase, Relation
from ..core.probkb import ProbKB
from ..core.relmodel import FACT_KEY_COLUMNS
from ..datasets.io import _parse_rule_line, _rule_line

SNAPSHOT_FORMAT = "probkb-snapshot"
SNAPSHOT_VERSION = 1

FactKeyNames = Tuple[str, str, str, str, str]


def snapshot_dict(probkb: ProbKB) -> dict:
    """The JSON-ready snapshot of a (typically expanded) ProbKB."""
    kb = probkb.kb
    facts = [
        [f.relation, f.subject, f.subject_class, f.object, f.object_class, f.weight]
        for f in probkb.all_facts()
    ]
    return {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "generation": probkb.generation,
        "classes": {name: sorted(members) for name, members in kb.classes.items()},
        "relations": sorted(
            [r.name, r.domain, r.range] for r in kb.relations.values()
        ),
        "facts": facts,
        "rules": [_rule_line(rule) for rule in kb.rules],
        "constraints": [
            [c.relation, c.arg, c.degree] for c in kb.constraints
        ],
        "marginals": [
            list(key) + [probability]
            for key, probability in sorted(_stored_marginals(probkb).items())
        ],
    }


def _stored_marginals(probkb: ProbKB) -> Dict[FactKeyNames, float]:
    """TProb decoded back to name-keyed marginals."""
    if not probkb.backend.has_table("TProb"):
        return {}
    rkb = probkb.rkb
    key_by_id = {
        row[0]: row[1:]
        for row in probkb.backend.project("TP", ("I",) + FACT_KEY_COLUMNS)
    }
    marginals: Dict[FactKeyNames, float] = {}
    for fact_id, probability in probkb.backend.project("TProb", ("I", "p")):
        key = key_by_id.get(fact_id)
        if key is None:
            continue
        relation, x, c1, y, c2 = key
        marginals[
            (
                rkb.relations.name(relation),
                rkb.entities.name(x),
                rkb.classes.name(c1),
                rkb.entities.name(y),
                rkb.classes.name(c2),
            )
        ] = probability
    return marginals


def save_snapshot(probkb: ProbKB, path: str) -> str:
    """Write the snapshot JSON (atomically: temp file + rename)."""
    payload = snapshot_dict(probkb)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    temp_path = path + ".tmp"
    with open(temp_path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    os.replace(temp_path, path)
    return path


_NSEG_UNSET = object()


def load_snapshot(
    path: str,
    backend: Union[BackendConfig, Backend, str] = "single",
    nseg: object = _NSEG_UNSET,
) -> ProbKB:
    """Rebuild a warm ProbKB from a snapshot — no grounding run.

    The expanded fact set is bulk-loaded as-is (the closure is already
    in it), TProb is refilled from the stored marginals, and the
    generation counter resumes where the snapshot left off.

    ``backend`` takes a :class:`~repro.api.BackendConfig` (or a live
    backend, or the ``"single"``/``"mpp"`` shorthand); the old ``nseg=``
    keyword still works but is deprecated.
    """
    if nseg is not _NSEG_UNSET:
        warnings.warn(
            "load_snapshot(nseg=...) is deprecated; pass "
            "backend=BackendConfig(kind='mpp', mpp=MPPConfig(...))",
            DeprecationWarning,
            stacklevel=2,
        )
        if isinstance(backend, str):
            backend = BackendConfig(
                kind=backend, mpp=MPPConfig(num_segments=nseg)
            )
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("format") != SNAPSHOT_FORMAT:
        raise ValueError(f"{path!r} is not a {SNAPSHOT_FORMAT} file")
    if payload.get("version") != SNAPSHOT_VERSION:
        raise ValueError(
            f"snapshot version {payload.get('version')!r} not supported "
            f"(expected {SNAPSHOT_VERSION})"
        )

    kb = KnowledgeBase(
        classes={name: set(members) for name, members in payload["classes"].items()},
        relations=[Relation(*triple) for triple in payload["relations"]],
        facts=[
            Fact(relation, subject, subject_class, obj, object_class, weight)
            for relation, subject, subject_class, obj, object_class, weight
            in payload["facts"]
        ],
        rules=[_parse_rule_line(line) for line in payload["rules"]],
        constraints=[
            FunctionalConstraint(relation, arg=arg, degree=degree)
            for relation, arg, degree in payload["constraints"]
        ],
        validate=False,
    )
    probkb = ProbKB(kb, backend=build_backend(backend))
    _restore_marginals(probkb, payload["marginals"])
    probkb.generation = int(payload.get("generation", 0))
    return probkb


def _restore_marginals(probkb: ProbKB, rows: List[list]) -> int:
    if not rows:
        return 0
    marginals = {
        Fact(relation, subject, subject_class, obj, object_class): probability
        for relation, subject, subject_class, obj, object_class, probability
        in rows
    }
    return probkb.materialize_marginals(marginals)


def export_sqlite(probkb: ProbKB, path: str) -> str:
    """Mirror the backing tables to an on-disk sqlite file.

    Single-node backends only (the MPP simulator's tables are sharded);
    handy for inspecting a serving KB with standard sqlite tooling.
    """
    from ..core.backends import SingleNodeBackend
    from ..relational.sqlite_bridge import SqliteMirror

    if not isinstance(probkb.backend, SingleNodeBackend):
        raise ValueError("sqlite export requires the single-node backend")
    if os.path.exists(path):
        os.remove(path)
    SqliteMirror(probkb.backend.db, path=path).close()
    return path
