"""repro.serve — the concurrent KB serving layer.

Wraps a :class:`~repro.ProbKB` in a long-lived, concurrency-safe
service: readers-writer locking for pattern queries vs evidence ingest,
micro-batched ingest with backpressure, an LRU query cache invalidated
by KB generation, warm-restart snapshots, and a stdlib JSON HTTP API.

Typical embedding::

    from repro.serve import KBService, ServiceConfig

    service = KBService(probkb).start()
    result = service.query(relation="born_in")
    service.ingest([fact], flush=True)
    service.stop()

``python -m repro.cli serve --kb <dir>`` runs the HTTP front end.
"""

from .cache import QueryCache
from .engine import KBService, QueryResult, RWLock, ServiceConfig
from .http import KBServer, make_server
from .ingest import EvidenceQueue, IngestConfig, IngestOverflow, IngestWorker, coalesce
from .metrics import LatencyRing, ServiceMetrics
from .snapshot import export_sqlite, load_snapshot, save_snapshot, snapshot_dict

__all__ = [
    "EvidenceQueue",
    "IngestConfig",
    "IngestOverflow",
    "IngestWorker",
    "KBServer",
    "KBService",
    "LatencyRing",
    "QueryCache",
    "QueryResult",
    "RWLock",
    "ServiceConfig",
    "ServiceMetrics",
    "coalesce",
    "export_sqlite",
    "load_snapshot",
    "make_server",
    "save_snapshot",
    "snapshot_dict",
]
