"""repro.serve — the concurrent KB serving layer.

Wraps a :class:`~repro.ProbKB` in a long-lived, concurrency-safe
service: readers-writer locking for pattern queries vs evidence ingest,
micro-batched ingest with backpressure and a dead-letter list, a query
cache (lru/lfu/ttl eviction) invalidated by KB generation, warm-restart
snapshots, optional O(delta) flush expansion (``expansion="delta"``,
see :mod:`repro.delta` and ``docs/incremental.md``), and a stdlib JSON
HTTP API hardened with bearer-token auth,
per-client rate limiting, request bounds, structured JSON logs, and
graceful drain (see ``docs/serve.md``).

Typical embedding::

    from repro.serve import KBService, ServiceConfig

    service = KBService(probkb).start()
    result = service.query(relation="born_in")
    service.ingest([fact], flush=True)
    service.stop()

``python -m repro.cli serve --kb <dir>`` runs the HTTP front end.
"""

from .cache import EVICTION_POLICIES, QueryCache
from .config import ServeConfig
from .engine import (
    EXPANSION_MODES,
    DeltaPipeline,
    KBService,
    QueryResult,
    RWLock,
    ServiceConfig,
)
from .http import KBServer, make_server
from .ingest import EvidenceQueue, IngestConfig, IngestOverflow, IngestWorker, coalesce
from .limiter import RateLimiter
from .logging import JsonLogger
from .metrics import LatencyRing, ServiceMetrics
from .snapshot import export_sqlite, load_snapshot, save_snapshot, snapshot_dict

__all__ = [
    "DeltaPipeline",
    "EVICTION_POLICIES",
    "EXPANSION_MODES",
    "EvidenceQueue",
    "IngestConfig",
    "IngestOverflow",
    "IngestWorker",
    "JsonLogger",
    "KBServer",
    "KBService",
    "LatencyRing",
    "QueryCache",
    "QueryResult",
    "RWLock",
    "RateLimiter",
    "ServeConfig",
    "ServiceConfig",
    "ServiceMetrics",
    "coalesce",
    "export_sqlite",
    "load_snapshot",
    "make_server",
    "save_snapshot",
    "snapshot_dict",
]
