"""Service metrics: counters plus a fixed-size latency ring buffer.

Everything here is updated from request threads and the ingest worker
concurrently, so each structure carries its own lock.  Reads produce a
plain dict snapshot (what ``GET /stats`` returns).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..devtools.sanitizer import make_lock


class LatencyRing:
    """The last N observed latencies, with percentile queries.

    A bounded ring keeps the percentile computation O(N log N) for a
    constant N regardless of how long the service has been up — the
    standard tradeoff for cheap online p50/p99.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = make_lock("LatencyRing._lock")
        self._samples: List[float] = []  # guarded by: self._lock
        self._next = 0  # guarded by: self._lock
        self._count = 0  # guarded by: self._lock

    def observe(self, seconds: float) -> None:
        with self._lock:
            if len(self._samples) < self.capacity:
                self._samples.append(seconds)
            else:
                self._samples[self._next] = seconds
                self._next = (self._next + 1) % self.capacity
            self._count += 1

    def percentile(self, q: float) -> Optional[float]:
        """The q-th percentile (0 <= q <= 100) of the retained window."""
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return None
        rank = max(0, min(len(samples) - 1, round(q / 100.0 * (len(samples) - 1))))
        return samples[rank]

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> Dict[str, Optional[float]]:
        return {
            "count": self.count,
            "p50_seconds": self.percentile(50),
            "p99_seconds": self.percentile(99),
        }


class ServiceMetrics:
    """Counters for the serving layer, safe for concurrent updates."""

    def __init__(self, latency_window: int = 1024) -> None:
        self._lock = make_lock("ServiceMetrics._lock")
        self.queries = 0  # guarded by: self._lock
        self.cache_hits = 0  # guarded by: self._lock
        self.cache_misses = 0  # guarded by: self._lock
        self.ingested_facts = 0  # guarded by: self._lock
        self.ingest_batches = 0  # guarded by: self._lock
        self.snapshots_saved = 0  # guarded by: self._lock
        self.auth_failures = 0  # guarded by: self._lock
        self.rate_limited = 0  # guarded by: self._lock
        self.request_timeouts = 0  # guarded by: self._lock
        self.oversize_rejected = 0  # guarded by: self._lock
        self.dead_letter_facts = 0  # guarded by: self._lock
        self.dead_letter_retries = 0  # guarded by: self._lock
        self.delta_flushes = 0  # guarded by: self._lock
        self.delta_facts = 0  # guarded by: self._lock
        self.delta_factors = 0  # guarded by: self._lock
        self.delta_touched_components = 0  # guarded by: self._lock
        self.delta_resampled_variables = 0  # guarded by: self._lock
        self.delta_full_rebuilds = 0  # guarded by: self._lock
        self.delta_errors = 0  # guarded by: self._lock
        self.query_latency = LatencyRing(latency_window)
        self.delta_ground_latency = LatencyRing(latency_window)
        self.delta_infer_latency = LatencyRing(latency_window)
        self.delta_commit_latency = LatencyRing(latency_window)

    def record_query(self, seconds: float, cache_hit: bool) -> None:
        with self._lock:
            self.queries += 1
            if cache_hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
        self.query_latency.observe(seconds)

    def record_ingest(self, facts: int) -> None:
        with self._lock:
            self.ingest_batches += 1
            self.ingested_facts += facts

    def record_snapshot(self) -> None:
        with self._lock:
            self.snapshots_saved += 1

    def record_auth_failure(self) -> None:
        with self._lock:
            self.auth_failures += 1

    def record_rate_limited(self) -> None:
        with self._lock:
            self.rate_limited += 1

    def record_timeout(self) -> None:
        with self._lock:
            self.request_timeouts += 1

    def record_oversize(self) -> None:
        with self._lock:
            self.oversize_rejected += 1

    def record_dead_letter(self, facts: int) -> None:
        """Facts that failed to apply (after retry) and were dead-lettered."""
        with self._lock:
            self.dead_letter_facts += facts

    def record_dead_letter_retry(self, facts: int) -> None:
        """Dead-lettered facts an operator requeued for another attempt."""
        with self._lock:
            self.dead_letter_retries += facts

    def record_delta_ground(
        self,
        facts: int,
        factors: int,
        touched_components: int,
        full_rebuild: bool,
        seconds: float,
    ) -> None:
        """Stage A of a delta flush: what the delta grounding produced."""
        with self._lock:
            self.delta_flushes += 1
            self.delta_facts += facts
            self.delta_factors += factors
            self.delta_touched_components += touched_components
            if full_rebuild:
                self.delta_full_rebuilds += 1
        self.delta_ground_latency.observe(seconds)

    def record_delta_refresh(
        self, resampled_variables: int, infer_seconds: float, commit_seconds: float
    ) -> None:
        """Stages B+C of a delta flush: the marginal refresh."""
        with self._lock:
            self.delta_resampled_variables += resampled_variables
        self.delta_infer_latency.observe(infer_seconds)
        self.delta_commit_latency.observe(commit_seconds)

    def record_delta_error(self) -> None:
        """A delta refresh died on the pipeline thread (and was logged)."""
        with self._lock:
            self.delta_errors += 1

    @property
    def cache_hit_rate(self) -> float:
        with self._lock:
            total = self.cache_hits + self.cache_misses
            return self.cache_hits / total if total else 0.0

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            counters: Dict[str, object] = {
                "queries": self.queries,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "ingested_facts": self.ingested_facts,
                "ingest_batches": self.ingest_batches,
                "snapshots_saved": self.snapshots_saved,
                "auth_failures": self.auth_failures,
                "rate_limited": self.rate_limited,
                "request_timeouts": self.request_timeouts,
                "oversize_rejected": self.oversize_rejected,
                "dead_letter_facts": self.dead_letter_facts,
                "dead_letter_retries": self.dead_letter_retries,
            }
            hits, misses = self.cache_hits, self.cache_misses
            delta: Dict[str, object] = {
                "flushes": self.delta_flushes,
                "facts": self.delta_facts,
                "factors": self.delta_factors,
                "touched_components": self.delta_touched_components,
                "resampled_variables": self.delta_resampled_variables,
                "full_rebuilds": self.delta_full_rebuilds,
                "errors": self.delta_errors,
            }
        total = hits + misses
        counters["cache_hit_rate"] = hits / total if total else 0.0
        counters["query_latency"] = self.query_latency.snapshot()
        delta["ground_latency"] = self.delta_ground_latency.snapshot()
        delta["infer_latency"] = self.delta_infer_latency.snapshot()
        delta["commit_latency"] = self.delta_commit_latency.snapshot()
        counters["delta"] = delta
        return counters
