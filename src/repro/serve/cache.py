"""An LRU query-result cache with generation-based invalidation.

Every ingest flush bumps the KB generation; cached entries are tagged
with the generation they were computed under and a lookup only returns
entries from the *current* generation.  Stale entries are dropped lazily
on access (and wholesale on :meth:`bump`), so invalidation is O(1) per
flush no matter how large the cache is.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Optional, Tuple


class QueryCache:
    """A thread-safe LRU cache keyed by query pattern.

    Keys are whatever tuple the caller builds — the serving layer uses
    ``(relation, subject, object, min_probability)``.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Tuple[int, Any]]" = OrderedDict()
        self._generation = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def generation(self) -> int:
        with self._lock:
            return self._generation

    def bump(self, generation: Optional[int] = None) -> None:
        """Invalidate everything cached so far.

        With an explicit ``generation`` the cache tracks the KB's own
        counter; without one it self-increments.  Entries written under
        older generations become unreachable either way.
        """
        with self._lock:
            if generation is None:
                self._generation += 1
            elif generation < self._generation:
                raise ValueError(
                    f"generation moved backwards: {generation} < {self._generation}"
                )
            else:
                self._generation = generation
            self._entries.clear()

    def get(self, key: Hashable) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; only current-generation entries hit."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry[0] != self._generation:
                if entry is not None:
                    del self._entries[key]
                self.misses += 1
                return False, None
            self._entries.move_to_end(key)
            self.hits += 1
            return True, entry[1]

    def put(self, key: Hashable, value: Any, generation: Optional[int] = None) -> None:
        """Store a result computed under ``generation`` (default: current).

        A result computed under an older generation is silently dropped —
        it was already stale when the computation finished.
        """
        with self._lock:
            if generation is None:
                generation = self._generation
            if generation != self._generation:
                return
            self._entries[key] = (generation, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "generation": self._generation,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hits / total if total else 0.0,
            }
