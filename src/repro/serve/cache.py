"""A query-result cache with generation-based invalidation.

Every ingest flush bumps the KB generation; cached entries are tagged
with the generation they were computed under and a lookup only returns
entries from the *current* generation.  Stale entries are dropped lazily
on access (and wholesale on :meth:`bump`), so invalidation is O(1) per
flush no matter how large the cache is.

Writers that know their blast radius can do better than wholesale:
:meth:`QueryCache.invalidate_predicates` advances the generation but
evicts only entries tagged (via ``put(..., predicates=...)``) with one
of the touched relation names — a delta flush over ``born_in`` leaves
cached ``works_at`` answers warm.

Eviction is pluggable (``policy=``):

``lru``
    Least-recently-used (the default, and the previous behavior): a hit
    refreshes the entry, the coldest entry goes first.
``lfu``
    Least-frequently-used: each hit increments a use count and the entry
    with the fewest uses goes first (ties: least recently touched).
    Better when a few hot patterns dominate but occasionally a scan of
    one-off queries would otherwise flush them out.
``ttl``
    Insertion-ordered with an expiry: entries older than ``ttl`` seconds
    are dropped on access and swept on insert; capacity overflow evicts
    the oldest entry.  Useful when staleness is bounded by wall clock
    rather than by generation alone (e.g. probabilities drift as
    materialization reruns).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Optional,
    Tuple,
)

from ..devtools.sanitizer import make_lock

EVICTION_POLICIES = ("lru", "lfu", "ttl")


class _Entry:
    __slots__ = ("generation", "value", "uses", "stored_at", "predicates")

    def __init__(
        self,
        generation: int,
        value: Any,
        stored_at: float,
        predicates: Optional[FrozenSet[str]] = None,
    ) -> None:
        self.generation = generation
        self.value = value
        self.uses = 0
        self.stored_at = stored_at
        #: the predicates (relation names) the result depends on; None
        #: means "unknown / all" — such entries fall to any invalidation
        self.predicates = predicates


class QueryCache:
    """A thread-safe query cache keyed by query pattern.

    Keys are whatever tuple the caller builds — the serving layer uses
    ``(relation, subject, object, min_probability)``.
    """

    def __init__(
        self,
        capacity: int = 256,
        policy: str = "lru",
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        if policy not in EVICTION_POLICIES:
            raise ValueError(
                f"unknown eviction policy {policy!r}; "
                f"choose from {', '.join(EVICTION_POLICIES)}"
            )
        if policy == "ttl":
            if ttl is None or ttl <= 0:
                raise ValueError("ttl policy needs ttl > 0 seconds")
        self.capacity = capacity
        self.policy = policy
        self.ttl = ttl
        self._clock = clock
        self._lock = make_lock("QueryCache._lock")
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()  # guarded by: self._lock
        self._generation = 0  # guarded by: self._lock
        self.hits = 0  # guarded by: self._lock
        self.misses = 0  # guarded by: self._lock
        self.evictions = 0  # guarded by: self._lock
        self.expirations = 0  # guarded by: self._lock
        #: entries evicted by predicate-scoped invalidation
        self.invalidations = 0  # guarded by: self._lock

    @property
    def generation(self) -> int:
        with self._lock:
            return self._generation

    def bump(self, generation: Optional[int] = None) -> None:
        """Invalidate everything cached so far.

        With an explicit ``generation`` the cache tracks the KB's own
        counter; without one it self-increments.  Entries written under
        older generations become unreachable either way.
        """
        with self._lock:
            if generation is None:
                self._generation += 1
            elif generation < self._generation:
                raise ValueError(
                    f"generation moved backwards: {generation} < {self._generation}"
                )
            else:
                self._generation = generation
            self._entries.clear()

    def invalidate_predicates(
        self,
        predicates: Iterable[str],
        generation: Optional[int] = None,
    ) -> int:
        """Advance the generation but evict only entries whose results
        could depend on one of ``predicates``.

        A delta flush knows exactly which relations it touched; entries
        over disjoint predicate sets are still correct, so they survive
        the generation advance (their tags are re-stamped to the new
        generation — "computed earlier, still valid here").  Entries
        with no predicate tag (``predicates=None`` at :meth:`put`) are
        conservatively evicted.  Returns the number of evictions.
        """
        touched = frozenset(predicates)
        with self._lock:
            if generation is None:
                self._generation += 1
            elif generation < self._generation:
                raise ValueError(
                    f"generation moved backwards: {generation} < {self._generation}"
                )
            else:
                self._generation = generation
            doomed = [
                key
                for key, entry in self._entries.items()
                if entry.predicates is None or entry.predicates & touched
            ]
            for key in doomed:
                del self._entries[key]
            for entry in self._entries.values():
                entry.generation = self._generation
            self.invalidations += len(doomed)
            return len(doomed)

    def _expired(self, entry: _Entry, now: float) -> bool:
        return (
            self.policy == "ttl"
            and self.ttl is not None
            and now - entry.stored_at > self.ttl
        )

    def get(self, key: Hashable) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; only live current-generation entries hit."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return False, None
            if entry.generation != self._generation:
                del self._entries[key]
                self.misses += 1
                return False, None
            if self._expired(entry, self._clock()):
                del self._entries[key]
                self.expirations += 1
                self.misses += 1
                return False, None
            entry.uses += 1
            if self.policy in ("lru", "lfu"):
                # recency is the primary (lru) or tie-breaking (lfu) signal;
                # ttl keeps insertion order so the oldest entry stays first
                self._entries.move_to_end(key)
            self.hits += 1
            return True, entry.value

    def put(
        self,
        key: Hashable,
        value: Any,
        generation: Optional[int] = None,
        predicates: Optional[FrozenSet[str]] = None,
    ) -> None:
        """Store a result computed under ``generation`` (default: current).

        A result computed under an older generation is silently dropped —
        it was already stale when the computation finished.
        ``predicates`` tags the entry with the relation names its result
        depends on, enabling :meth:`invalidate_predicates` to keep it
        across unrelated flushes; None means "depends on everything".
        """
        with self._lock:
            if generation is None:
                generation = self._generation
            if generation != self._generation:
                return
            now = self._clock()
            if self.policy == "ttl":
                self._sweep_expired(now)
            if key not in self._entries:
                # evict before inserting so the newcomer never competes
                # (an lfu entry starts at 0 uses and would evict itself)
                while len(self._entries) >= self.capacity:
                    self._evict_one()
            self._entries[key] = _Entry(generation, value, now, predicates)
            self._entries.move_to_end(key)

    # holds: self._lock
    def _sweep_expired(self, now: float) -> None:
        expired = [
            key for key, entry in self._entries.items() if self._expired(entry, now)
        ]
        for key in expired:
            del self._entries[key]
            self.expirations += 1

    # holds: self._lock
    def _evict_one(self) -> None:
        if self.policy == "lfu":
            # O(capacity) scan; capacities here are hundreds, not millions.
            # Iteration order is least-recently-touched first, so `<` makes
            # recency the tie-breaker for equal use counts.
            victim = None
            fewest = None
            for key, entry in self._entries.items():
                if fewest is None or entry.uses < fewest:
                    victim, fewest = key, entry.uses
            assert victim is not None
            del self._entries[victim]
        else:
            # lru: coldest first; ttl: oldest insertion first
            self._entries.popitem(last=False)
        self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        with self._lock:
            total = self.hits + self.misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "policy": self.policy,
                "ttl": self.ttl,
                "generation": self._generation,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "invalidations": self.invalidations,
                "hit_rate": self.hits / total if total else 0.0,
            }
