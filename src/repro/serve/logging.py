"""Structured JSON logging for the serving layer.

One event per line, one JSON object per event — the format every log
shipper ingests without configuration.  The request handler logs a line
per HTTP request, the ingest path a line per flush/error, always with
the fields an operator greps for first: the KB generation the event saw,
the latency it took, and the queue depth behind it.

A :class:`JsonLogger` is cheap to construct and safe to share across
threads; a disabled logger reduces every call to one attribute check, so
call sites never need their own ``if``.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Callable, Optional, TextIO


class JsonLogger:
    """Thread-safe one-line-per-event JSON logger.

    Events go to ``stream`` (default: stderr, keeping stdout clean for
    the CLI's human-readable output).  Non-serializable field values are
    rendered with ``repr`` rather than raising — a log line must never
    take the request down with it.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        enabled: bool = True,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.stream: TextIO = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self._clock = clock
        self._lock = threading.Lock()

    def log(self, event: str, **fields: object) -> None:
        """Emit one ``{"ts": ..., "event": event, ...fields}`` line."""
        if not self.enabled:
            return
        record: dict = {"ts": round(self._clock(), 6), "event": event}
        record.update(fields)
        line = json.dumps(record, default=repr)
        with self._lock:
            try:
                self.stream.write(line + "\n")
                self.stream.flush()
            except (OSError, ValueError):
                # closed/broken stream: logging must never break serving
                self.enabled = False


#: shared no-op logger for call sites that were not handed one
NULL_LOGGER = JsonLogger(enabled=False)
