"""The concurrency-safe serving engine around a :class:`~repro.ProbKB`.

A :class:`KBService` gives many reader threads pattern-query access to
the expanded KB while a single ingest worker streams new evidence in.
Consistency model: a readers-writer lock serializes ingest flushes
against queries, so every query observes one KB generation — never a
half-merged delta.  Each result carries the generation it was computed
under, which is what the torn-read assertions in the concurrency tests
(and downstream caches) key on.
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator, List, NamedTuple, Optional, Sequence, Tuple

from ..core.clauses import HornClause
from ..core.config import InferenceConfig
from ..core.model import Fact
from ..core.probkb import ProbKB
from ..delta import DeltaExpander, PendingDelta
from ..devtools.sanitizer import get_sanitizer, make_lock, shadow_token
from .cache import EVICTION_POLICIES, QueryCache
from .ingest import EvidenceQueue, IngestConfig, IngestWorker
from .logging import NULL_LOGGER, JsonLogger
from .metrics import ServiceMetrics

#: how a flush refreshes the KB: "full" re-expands globally (the PR-1
#: behavior), "delta" routes through :mod:`repro.delta`
EXPANSION_MODES = ("full", "delta")


class RWLock:
    """A readers-writer lock with writer preference.

    Queries are plentiful and cheap; flushes are rare and must not
    starve, so arriving readers queue behind a waiting writer.
    """

    def __init__(self, name: str = "RWLock") -> None:
        self._lock = make_lock(f"{name}._lock")
        self._readers_ok = threading.Condition(self._lock)
        self._writers_ok = threading.Condition(self._lock)
        self._active_readers = 0  # guarded by: self._lock
        self._waiting_writers = 0  # guarded by: self._lock
        self._writer_active = False  # guarded by: self._lock
        # in the sanitizer's order graph the whole RWLock is one node;
        # the token is never noted while _lock is held, so the internal
        # bookkeeping lock cannot form a false edge against it
        self._shadow = shadow_token(name)

    def acquire_read(self) -> None:
        if self._shadow is not None:
            get_sanitizer().check_acquire(self._shadow, self._shadow.name)
        with self._lock:
            while self._writer_active or self._waiting_writers:
                self._readers_ok.wait()
            self._active_readers += 1
        if self._shadow is not None:
            get_sanitizer().note_acquired(self._shadow, self._shadow.name)

    def release_read(self) -> None:
        if self._shadow is not None:
            get_sanitizer().note_released(self._shadow)
        with self._lock:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._writers_ok.notify()

    def acquire_write(self) -> None:
        if self._shadow is not None:
            get_sanitizer().check_acquire(self._shadow, self._shadow.name)
        with self._lock:
            self._waiting_writers += 1
            try:
                while self._writer_active or self._active_readers:
                    self._writers_ok.wait()
            finally:
                self._waiting_writers -= 1
            self._writer_active = True
        if self._shadow is not None:
            get_sanitizer().note_acquired(self._shadow, self._shadow.name)

    def release_write(self) -> None:
        if self._shadow is not None:
            get_sanitizer().note_released(self._shadow)
        with self._lock:
            self._writer_active = False
            if self._waiting_writers:
                self._writers_ok.notify()
            else:
                self._readers_ok.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


@dataclass
class ServiceConfig:
    """Serving-layer tuning, independent of the wrapped KB's own config."""

    cache_size: int = 256
    #: query-cache eviction policy: "lru" (default), "lfu", or "ttl"
    cache_policy: str = "lru"
    #: entry lifetime in seconds; required when ``cache_policy="ttl"``
    cache_ttl: Optional[float] = None
    ingest: IngestConfig = field(default_factory=IngestConfig)
    #: rerun marginal inference + TProb after each flush; costly, so off
    #: by default — queries then report None for fresh inferred facts
    #: until the operator materializes.
    infer_on_flush: bool = False
    #: deprecated: pass ``inference=InferenceConfig(...)`` instead
    num_sweeps: Optional[int] = None
    seed: Optional[int] = None
    latency_window: int = 1024
    #: how flush/materialize inference runs (fewer sweeps than the
    #: offline default: serving favours latency)
    inference: Optional[InferenceConfig] = None
    #: "full" (default) re-expands and leaves fresh facts unscored until
    #: materialize; "delta" incrementally grounds each flush and
    #: re-samples only the touched factor-graph components
    #: (:mod:`repro.delta`), keeping marginals continuously fresh
    expansion: str = "full"

    def __post_init__(self) -> None:
        if self.cache_policy not in EVICTION_POLICIES:
            raise ValueError(
                f"unknown cache_policy {self.cache_policy!r}; "
                f"choose from {', '.join(EVICTION_POLICIES)}"
            )
        if self.expansion not in EXPANSION_MODES:
            raise ValueError(
                f"unknown expansion {self.expansion!r}; "
                f"choose from {', '.join(EXPANSION_MODES)}"
            )
        overrides = {}
        if self.num_sweeps is not None:
            overrides["sweeps"] = self.num_sweeps
        if self.seed is not None:
            overrides["seed"] = self.seed
        if overrides:
            warnings.warn(
                "ServiceConfig(num_sweeps=..., seed=...) is deprecated; "
                "pass inference=InferenceConfig(...)",
                DeprecationWarning,
                stacklevel=3,
            )
        resolved = self.inference or InferenceConfig(sweeps=200, seed=0)
        if overrides:
            resolved = replace(resolved, **overrides)
        self.inference = resolved
        # keep the legacy attributes readable for older call sites
        self.num_sweeps = resolved.num_sweeps
        self.seed = resolved.seed


class QueryResult(NamedTuple):
    """A query answer pinned to the generation it was computed under."""

    generation: int
    facts: List[Tuple[Fact, Optional[float]]]
    cache_hit: bool


class DeltaPipeline:
    """FIFO handoff from delta grounding to delta inference.

    Stage A (grounding, under the write lock) submits a
    :class:`~repro.delta.PendingDelta`; this single consumer thread runs
    stages B+C (re-sample off-lock, then commit under the write lock).
    Double buffering falls out of the split: while batch N's components
    are being re-sampled here, the ingest worker is free to ground batch
    N+1.  FIFO order plus A-time payload snapshots make the interleaving
    sequentially equivalent — if N+1 merged one of N's components, N+1's
    own re-sample is queued behind N's and overwrites any stale splice.
    """

    def __init__(
        self,
        finish: Callable[[PendingDelta], None],
        logger: Optional[JsonLogger] = None,
        on_error: Optional[Callable[[BaseException], None]] = None,
    ) -> None:
        self._finish = finish
        self._logger = logger if logger is not None else NULL_LOGGER
        self._on_error = on_error
        self._queue: "queue_module.Queue[Optional[PendingDelta]]" = (
            queue_module.Queue()
        )
        self._lock = make_lock("DeltaPipeline._lock")
        self._thread: Optional[threading.Thread] = None  # guarded by: self._lock
        # written only by the consumer thread, read anywhere (stats)
        self.errors = 0

    def submit(self, pending: PendingDelta) -> None:
        with self._lock:
            if self._thread is None or not self._thread.is_alive():
                # first submit, or the pipeline was stopped: a finished
                # Thread cannot be restarted, so hand work to a fresh one
                self._thread = threading.Thread(
                    target=self._run, name="probkb-delta-infer", daemon=True
                )
                self._thread.start()
        self._queue.put(pending)

    def drain(self) -> None:
        """Block until every submitted delta has been committed."""
        self._queue.join()

    def stop(self) -> None:
        # the lock is held across put+join so a concurrent submit cannot
        # spin up a second consumer while the sentinel is in flight;
        # _run never takes this lock, so the join cannot deadlock
        with self._lock:
            thread = self._thread
            self._thread = None
            if thread is not None and thread.is_alive():
                self._queue.put(None)
                thread.join()

    @property
    def depth(self) -> int:
        """Deltas grounded but not yet committed (approximate)."""
        return self._queue.qsize()

    def _run(self) -> None:
        while True:
            # sentinel wakeup: stop() enqueues None behind pending work
            item = self._queue.get()  # lint: disable=RC004
            try:
                if item is None:
                    return
                try:
                    self._finish(item)
                except Exception as error:
                    # the consumer must outlive any one bad delta:
                    # swallowing here keeps the thread draining so later
                    # submits are not enqueued forever (see RC005)
                    self.errors += 1
                    self._logger.log("delta_error", error=repr(error))
                    if self._on_error is not None:
                        try:
                            self._on_error(error)
                        except Exception:  # pragma: no cover - defensive
                            pass
            finally:
                self._queue.task_done()


class KBService:
    """A long-lived, concurrency-safe front end over one ProbKB."""

    def __init__(
        self,
        probkb: ProbKB,
        config: Optional[ServiceConfig] = None,
        logger: Optional[JsonLogger] = None,
    ) -> None:
        self.probkb = probkb
        self.config = config or ServiceConfig()
        self.logger = logger if logger is not None else NULL_LOGGER
        self.lock = RWLock(name="KBService.lock")
        self.cache = QueryCache(
            self.config.cache_size,
            policy=self.config.cache_policy,
            ttl=self.config.cache_ttl,
        )
        self.cache.bump(probkb.generation)
        self.metrics = ServiceMetrics(self.config.latency_window)
        self.queue = EvidenceQueue(self.config.ingest)
        self.worker = IngestWorker(
            self.queue,
            self._apply_batch,
            on_drop=self.metrics.record_dead_letter,
            logger=self.logger,
        )
        self.delta: Optional[DeltaExpander] = None
        self.pipeline: Optional[DeltaPipeline] = None
        if self.config.expansion == "delta":
            self.delta = DeltaExpander(probkb, inference=self.config.inference)
            self.pipeline = DeltaPipeline(
                self._finish_delta,
                logger=self.logger,
                on_error=self._on_delta_error,
            )
        # wall-clock birth time stays externally visible; elapsed time is
        # measured on the monotonic clock, immune to NTP steps (RC006)
        self.started_at = time.time()
        self._started_monotonic = time.monotonic()
        self._running = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "KBService":
        if not self._running:
            self.worker.start()
            self._running = True
        return self

    def stop(self) -> None:
        if self._running:
            self.worker.stop(drain=True)
            if self.pipeline is not None:
                self.pipeline.drain()
                self.pipeline.stop()
            self._running = False

    def __enter__(self) -> "KBService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- read side ---------------------------------------------------------

    def query(
        self,
        relation: Optional[str] = None,
        subject: Optional[str] = None,
        object: Optional[str] = None,
        min_probability: float = 0.0,
    ) -> QueryResult:
        """Pattern-query the expanded KB, through the generation cache."""
        started = time.perf_counter()
        key = (relation, subject, object, min_probability)
        hit, cached = self.cache.get(key)
        if hit:
            generation, facts = cached
            self.metrics.record_query(time.perf_counter() - started, cache_hit=True)
            return QueryResult(generation, facts, True)
        with self.lock.read_locked():
            generation = self.probkb.generation
            facts = self.probkb.query_facts(
                relation=relation,
                subject=subject,
                object=object,
                min_probability=min_probability,
            )
        # tag the entry with the one relation it can depend on, so a
        # delta flush over other predicates leaves it warm; pattern-free
        # queries depend on everything (None = evict on any flush)
        predicates = frozenset((relation,)) if relation is not None else None
        self.cache.put(
            key, (generation, facts), generation=generation, predicates=predicates
        )
        self.metrics.record_query(time.perf_counter() - started, cache_hit=False)
        return QueryResult(generation, facts, False)

    def fact_count(self) -> int:
        with self.lock.read_locked():
            return self.probkb.fact_count()

    def explain(self) -> dict:
        """Static plan report for the current KB (a read: nothing
        executes, no table changes — safe under concurrent ingest).
        The ``verified`` block carries the plan verifier's PKB201-212
        reports for every plan in the payload."""
        with self.lock.read_locked():
            report = self.probkb.explain()
            verified = self.probkb.verify_plans()
            generation = self.probkb.generation
        payload = report.to_dict()
        payload["verified"] = [r.to_dict() for r in verified]
        payload["generation"] = generation
        return payload

    @property
    def generation(self) -> int:
        with self.lock.read_locked():
            return self.probkb.generation

    # -- write side ----------------------------------------------------------

    def ingest(self, facts: Sequence[Fact], flush: bool = False) -> int:
        """Queue evidence for the next micro-batch flush.

        Returns the queue depth after enqueueing.  ``flush=True`` applies
        everything pending before returning (synchronous ingest).
        """
        depth = self.queue.put(facts)
        if flush:
            self.flush()
            depth = self.queue.depth
        return depth

    def flush(self) -> int:
        """Apply all pending evidence now; returns facts applied.

        In delta mode this also waits for the inference pipeline, so on
        return the refreshed marginals are committed and queryable.
        """
        applied = self.worker.flush()
        if self.pipeline is not None:
            self.pipeline.drain()
        return applied

    def retry_dead_letter(self) -> Tuple[int, int]:
        """Requeue dead-lettered facts (``POST /dead-letter/retry``).

        Returns ``(facts requeued, queue depth after)``; raises
        :class:`~repro.serve.ingest.IngestOverflow` (nothing lost — the
        facts stay dead-lettered) when the queue cannot absorb them.
        """
        requeued, depth = self.worker.retry_dead_letter()
        if requeued:
            self.metrics.record_dead_letter_retry(requeued)
        return requeued, depth

    def add_rules(self, rules: Sequence[HornClause]) -> int:
        """Synchronously ingest new deductive rules under the write lock.

        Unlike evidence, rules do not stream through the micro-batch
        queue: a rule batch triggers a full naive regrounding, so
        batching buys nothing and the caller wants the analysis verdict
        immediately.  The wrapped KB's ``GroundingConfig.analysis`` gate
        screens the batch — under ``"strict"`` a defective rule raises
        :class:`~repro.analyze.AnalysisError` and nothing changes.
        Returns the number of new facts the rules derived.
        """
        if self.pipeline is not None:
            # let in-flight delta commits land before the rules reshape TΦ
            self.pipeline.drain()
        with self.lock.write_locked():
            outcome = self.probkb.add_rules(rules)
            if self.delta is not None:
                # new rules invalidate the component index and every
                # marginal; re-prime = one full componentwise expansion
                self.delta.prime()
            elif self.config.infer_on_flush:
                self.probkb.materialize_marginals(config=self.config.inference)
            self.cache.bump(self.probkb.generation)
        return outcome.total_new_facts

    def _apply_batch(self, batch: List[Fact]) -> None:
        """The single writer: evidence -> delta regrounding -> new generation."""
        if self.delta is not None:
            self._apply_batch_delta(batch)
            return
        started = time.perf_counter()
        with self.lock.write_locked():
            self.probkb.add_evidence(batch)
            if self.config.infer_on_flush:
                self.probkb.materialize_marginals(config=self.config.inference)
            generation = self.probkb.generation
            self.cache.bump(generation)
        self.metrics.record_ingest(len(batch))
        self.logger.log(
            "flush",
            facts=len(batch),
            generation=generation,
            queue_depth=self.queue.depth,
            latency_ms=round((time.perf_counter() - started) * 1000, 3),
        )

    def _apply_batch_delta(self, batch: List[Fact]) -> None:
        """Stage A of a delta flush: ground + snapshot under the write
        lock, then hand the pending delta to the inference pipeline."""
        assert self.delta is not None and self.pipeline is not None
        started = time.perf_counter()
        try:
            with self.lock.write_locked():
                primed_now = not self.delta.primed  # first flush primes
                pending = self.delta.ground(batch)
                generation = self.probkb.generation
                if pending.full_rebuild or primed_now:
                    self.cache.bump(generation)
                else:
                    self.cache.invalidate_predicates(
                        pending.touched_relations, generation
                    )
        except Exception:
            # a half-grounded delta leaves the expander's index stale;
            # re-prime on the next flush rather than splice garbage
            self.delta.invalidate()
            raise
        ground_seconds = time.perf_counter() - started
        self.metrics.record_ingest(len(batch))
        self.metrics.record_delta_ground(
            facts=pending.grounding.new_facts,
            factors=pending.grounding.new_factors,
            touched_components=pending.touched_components,
            full_rebuild=pending.full_rebuild,
            seconds=ground_seconds,
        )
        self.logger.log(
            "delta_flush",
            facts=len(batch),
            new_facts=pending.grounding.new_facts,
            new_factors=pending.grounding.new_factors,
            touched_components=pending.touched_components,
            touched_relations=sorted(pending.touched_relations),
            full_rebuild=pending.full_rebuild,
            generation=generation,
            queue_depth=self.queue.depth,
            latency_ms=round(ground_seconds * 1000, 3),
        )
        self.pipeline.submit(pending)

    def _finish_delta(self, pending: PendingDelta) -> None:
        """Stages B+C, on the pipeline thread: re-sample the snapshot
        components lock-free, then splice under the write lock."""
        assert self.delta is not None
        started = time.perf_counter()
        refreshed = self.delta.infer(pending)
        inferred = time.perf_counter()
        with self.lock.write_locked():
            self.delta.commit(pending, refreshed)
            generation = self.probkb.generation
            if pending.full_rebuild:
                self.cache.bump(generation)
            else:
                self.cache.invalidate_predicates(
                    pending.touched_relations, generation
                )
        committed = time.perf_counter()
        self.metrics.record_delta_refresh(
            resampled_variables=pending.resampled_variables,
            infer_seconds=inferred - started,
            commit_seconds=committed - inferred,
        )
        self.logger.log(
            "delta_refresh",
            resampled_variables=pending.resampled_variables,
            touched_components=pending.touched_components,
            generation=generation,
            infer_ms=round((inferred - started) * 1000, 3),
            commit_ms=round((committed - inferred) * 1000, 3),
        )

    def _on_delta_error(self, error: BaseException) -> None:
        """Pipeline error hook: a failed stage B/C leaves the expander's
        component index unreliable — re-prime on the next flush."""
        assert self.delta is not None
        self.delta.invalidate()
        self.metrics.record_delta_error()

    def materialize(self, num_sweeps: Optional[int] = None) -> int:
        """Recompute + store marginals under the write lock."""
        inference = self.config.inference
        if num_sweeps is not None:
            inference = replace(inference, sweeps=num_sweeps)
        if self.delta is not None:
            # the delta path keeps TProb fresh; an explicit materialize
            # re-primes the baseline under the requested config
            self.pipeline.drain()  # type: ignore[union-attr]
            with self.lock.write_locked():
                self.delta.inference = inference
                self.delta.prime()
                stored = len(self.delta.marginals)
                self.cache.bump(self.probkb.generation)
            return stored
        with self.lock.write_locked():
            stored = self.probkb.materialize_marginals(config=inference)
            self.cache.bump(self.probkb.generation)
        return stored

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        with self.lock.read_locked():
            generation = self.probkb.generation
            facts = self.probkb.fact_count()
            factors = self.probkb.factor_count()
        report = {
            "generation": generation,
            "facts": facts,
            "factors": factors,
            "expansion": self.config.expansion,
            "queue_depth": self.queue.depth,
            "ingest_flushes": self.worker.flushes,
            "ingest_retries": self.worker.retries,
            "dead_letter": self.worker.dead_letter_stats(),
            "uptime_seconds": time.monotonic() - self._started_monotonic,
            "backend": self.probkb.backend.name,
            "executor": self.probkb.backend.executor_info(),
            "inference": self.probkb.inference_info(self.config.inference),
            "cache": self.cache.stats(),
        }
        if self.delta is not None and self.pipeline is not None:
            report["delta_state"] = {
                "primed": self.delta.primed,
                "components": self.delta.index.component_count(),
                "scored_facts": len(self.delta.marginals),
                "pending_inference": self.pipeline.depth,
                "errors": self.pipeline.errors,
            }
        if self.worker.last_error is not None:
            report["last_ingest_error"] = repr(self.worker.last_error)
        report.update(self.metrics.snapshot())
        return report
