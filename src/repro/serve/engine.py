"""The concurrency-safe serving engine around a :class:`~repro.ProbKB`.

A :class:`KBService` gives many reader threads pattern-query access to
the expanded KB while a single ingest worker streams new evidence in.
Consistency model: a readers-writer lock serializes ingest flushes
against queries, so every query observes one KB generation — never a
half-merged delta.  Each result carries the generation it was computed
under, which is what the torn-read assertions in the concurrency tests
(and downstream caches) key on.
"""

from __future__ import annotations

import threading
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Iterator, List, NamedTuple, Optional, Sequence, Tuple

from ..core.clauses import HornClause
from ..core.config import InferenceConfig
from ..core.model import Fact
from ..core.probkb import ProbKB
from .cache import EVICTION_POLICIES, QueryCache
from .ingest import EvidenceQueue, IngestConfig, IngestWorker
from .logging import NULL_LOGGER, JsonLogger
from .metrics import ServiceMetrics


class RWLock:
    """A readers-writer lock with writer preference.

    Queries are plentiful and cheap; flushes are rare and must not
    starve, so arriving readers queue behind a waiting writer.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._readers_ok = threading.Condition(self._lock)
        self._writers_ok = threading.Condition(self._lock)
        self._active_readers = 0
        self._waiting_writers = 0
        self._writer_active = False

    def acquire_read(self) -> None:
        with self._lock:
            while self._writer_active or self._waiting_writers:
                self._readers_ok.wait()
            self._active_readers += 1

    def release_read(self) -> None:
        with self._lock:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._writers_ok.notify()

    def acquire_write(self) -> None:
        with self._lock:
            self._waiting_writers += 1
            try:
                while self._writer_active or self._active_readers:
                    self._writers_ok.wait()
            finally:
                self._waiting_writers -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._lock:
            self._writer_active = False
            if self._waiting_writers:
                self._writers_ok.notify()
            else:
                self._readers_ok.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


@dataclass
class ServiceConfig:
    """Serving-layer tuning, independent of the wrapped KB's own config."""

    cache_size: int = 256
    #: query-cache eviction policy: "lru" (default), "lfu", or "ttl"
    cache_policy: str = "lru"
    #: entry lifetime in seconds; required when ``cache_policy="ttl"``
    cache_ttl: Optional[float] = None
    ingest: IngestConfig = field(default_factory=IngestConfig)
    #: rerun marginal inference + TProb after each flush; costly, so off
    #: by default — queries then report None for fresh inferred facts
    #: until the operator materializes.
    infer_on_flush: bool = False
    #: deprecated: pass ``inference=InferenceConfig(...)`` instead
    num_sweeps: Optional[int] = None
    seed: Optional[int] = None
    latency_window: int = 1024
    #: how flush/materialize inference runs (fewer sweeps than the
    #: offline default: serving favours latency)
    inference: Optional[InferenceConfig] = None

    def __post_init__(self) -> None:
        if self.cache_policy not in EVICTION_POLICIES:
            raise ValueError(
                f"unknown cache_policy {self.cache_policy!r}; "
                f"choose from {', '.join(EVICTION_POLICIES)}"
            )
        overrides = {}
        if self.num_sweeps is not None:
            overrides["num_sweeps"] = self.num_sweeps
        if self.seed is not None:
            overrides["seed"] = self.seed
        if overrides:
            warnings.warn(
                "ServiceConfig(num_sweeps=..., seed=...) is deprecated; "
                "pass inference=InferenceConfig(...)",
                DeprecationWarning,
                stacklevel=3,
            )
        resolved = self.inference or InferenceConfig(num_sweeps=200, seed=0)
        if overrides:
            resolved = replace(resolved, **overrides)
        self.inference = resolved
        # keep the legacy attributes readable for older call sites
        self.num_sweeps = resolved.num_sweeps
        self.seed = resolved.seed


class QueryResult(NamedTuple):
    """A query answer pinned to the generation it was computed under."""

    generation: int
    facts: List[Tuple[Fact, Optional[float]]]
    cache_hit: bool


class KBService:
    """A long-lived, concurrency-safe front end over one ProbKB."""

    def __init__(
        self,
        probkb: ProbKB,
        config: Optional[ServiceConfig] = None,
        logger: Optional[JsonLogger] = None,
    ) -> None:
        self.probkb = probkb
        self.config = config or ServiceConfig()
        self.logger = logger if logger is not None else NULL_LOGGER
        self.lock = RWLock()
        self.cache = QueryCache(
            self.config.cache_size,
            policy=self.config.cache_policy,
            ttl=self.config.cache_ttl,
        )
        self.cache.bump(probkb.generation)
        self.metrics = ServiceMetrics(self.config.latency_window)
        self.queue = EvidenceQueue(self.config.ingest)
        self.worker = IngestWorker(
            self.queue,
            self._apply_batch,
            on_drop=self.metrics.record_dead_letter,
            logger=self.logger,
        )
        self.started_at = time.time()
        self._running = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "KBService":
        if not self._running:
            self.worker.start()
            self._running = True
        return self

    def stop(self) -> None:
        if self._running:
            self.worker.stop(drain=True)
            self._running = False

    def __enter__(self) -> "KBService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- read side ---------------------------------------------------------

    def query(
        self,
        relation: Optional[str] = None,
        subject: Optional[str] = None,
        object: Optional[str] = None,
        min_probability: float = 0.0,
    ) -> QueryResult:
        """Pattern-query the expanded KB, through the generation cache."""
        started = time.perf_counter()
        key = (relation, subject, object, min_probability)
        hit, cached = self.cache.get(key)
        if hit:
            generation, facts = cached
            self.metrics.record_query(time.perf_counter() - started, cache_hit=True)
            return QueryResult(generation, facts, True)
        with self.lock.read_locked():
            generation = self.probkb.generation
            facts = self.probkb.query_facts(
                relation=relation,
                subject=subject,
                object=object,
                min_probability=min_probability,
            )
        self.cache.put(key, (generation, facts), generation=generation)
        self.metrics.record_query(time.perf_counter() - started, cache_hit=False)
        return QueryResult(generation, facts, False)

    def fact_count(self) -> int:
        with self.lock.read_locked():
            return self.probkb.fact_count()

    def explain(self) -> dict:
        """Static plan report for the current KB (a read: nothing
        executes, no table changes — safe under concurrent ingest)."""
        with self.lock.read_locked():
            report = self.probkb.explain()
            generation = self.probkb.generation
        payload = report.to_dict()
        payload["generation"] = generation
        return payload

    @property
    def generation(self) -> int:
        with self.lock.read_locked():
            return self.probkb.generation

    # -- write side ----------------------------------------------------------

    def ingest(self, facts: Sequence[Fact], flush: bool = False) -> int:
        """Queue evidence for the next micro-batch flush.

        Returns the queue depth after enqueueing.  ``flush=True`` applies
        everything pending before returning (synchronous ingest).
        """
        depth = self.queue.put(facts)
        if flush:
            self.flush()
            depth = self.queue.depth
        return depth

    def flush(self) -> int:
        """Apply all pending evidence now; returns facts applied."""
        return self.worker.flush()

    def add_rules(self, rules: Sequence[HornClause]) -> int:
        """Synchronously ingest new deductive rules under the write lock.

        Unlike evidence, rules do not stream through the micro-batch
        queue: a rule batch triggers a full naive regrounding, so
        batching buys nothing and the caller wants the analysis verdict
        immediately.  The wrapped KB's ``GroundingConfig.analysis`` gate
        screens the batch — under ``"strict"`` a defective rule raises
        :class:`~repro.analyze.AnalysisError` and nothing changes.
        Returns the number of new facts the rules derived.
        """
        with self.lock.write_locked():
            outcome = self.probkb.add_rules(rules)
            if self.config.infer_on_flush:
                self.probkb.materialize_marginals(config=self.config.inference)
            self.cache.bump(self.probkb.generation)
        return outcome.total_new_facts

    def _apply_batch(self, batch: List[Fact]) -> None:
        """The single writer: evidence -> delta regrounding -> new generation."""
        started = time.perf_counter()
        with self.lock.write_locked():
            self.probkb.add_evidence(batch)
            if self.config.infer_on_flush:
                self.probkb.materialize_marginals(config=self.config.inference)
            generation = self.probkb.generation
            self.cache.bump(generation)
        self.metrics.record_ingest(len(batch))
        self.logger.log(
            "flush",
            facts=len(batch),
            generation=generation,
            queue_depth=self.queue.depth,
            latency_ms=round((time.perf_counter() - started) * 1000, 3),
        )

    def materialize(self, num_sweeps: Optional[int] = None) -> int:
        """Recompute + store marginals under the write lock."""
        inference = self.config.inference
        if num_sweeps is not None:
            inference = replace(inference, num_sweeps=num_sweeps)
        with self.lock.write_locked():
            stored = self.probkb.materialize_marginals(config=inference)
            self.cache.bump(self.probkb.generation)
        return stored

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        with self.lock.read_locked():
            generation = self.probkb.generation
            facts = self.probkb.fact_count()
            factors = self.probkb.factor_count()
        report = {
            "generation": generation,
            "facts": facts,
            "factors": factors,
            "queue_depth": self.queue.depth,
            "ingest_flushes": self.worker.flushes,
            "ingest_retries": self.worker.retries,
            "dead_letter": self.worker.dead_letter_stats(),
            "uptime_seconds": time.time() - self.started_at,
            "backend": self.probkb.backend.name,
            "executor": self.probkb.backend.executor_info(),
            "cache": self.cache.stats(),
        }
        if self.worker.last_error is not None:
            report["last_ingest_error"] = repr(self.worker.last_error)
        report.update(self.metrics.snapshot())
        return report
