"""Shared helpers for the benchmark harness under benchmarks/."""

from .reporting import (
    bench_scale,
    format_series,
    format_table,
    results_dir,
    scaled,
    write_result,
)

__all__ = [
    "bench_scale",
    "format_series",
    "format_table",
    "results_dir",
    "scaled",
    "write_result",
]
