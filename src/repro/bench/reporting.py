"""Benchmark reporting helpers.

Each benchmark regenerates one of the paper's tables or figures and
prints it in the same layout, with the paper's reported values alongside
for comparison.  Output also goes to ``benchmarks/results/<name>.txt``
so EXPERIMENTS.md can reference a stable artifact.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """A fixed-width text table."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def format_series(
    name: str, points: Sequence[tuple], x_label: str = "x", y_label: str = "y"
) -> str:
    """One plotted line as text: ``name: (x1, y1) (x2, y2) ...``."""
    body = " ".join(f"({_cell(x)}, {_cell(y)})" for x, y in points)
    return f"{name} [{x_label} -> {y_label}]: {body}"


def results_dir() -> str:
    """benchmarks/results/ next to the benchmark files."""
    here = os.path.dirname(os.path.abspath(__file__))
    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    directory = os.path.join(repo_root, "benchmarks", "results")
    os.makedirs(directory, exist_ok=True)
    return directory


def write_result(name: str, text: str, echo: bool = True) -> str:
    """Persist (and echo) one benchmark's report."""
    path = os.path.join(results_dir(), f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    if echo:
        print()
        print(text)
    return path


def bench_scale() -> float:
    """Workload scale multiplier from $REPRO_BENCH_SCALE (default 1.0).

    The paper ran on a 32-core/64 GB Greenplum cluster with KBs up to
    10M facts; defaults here are laptop-sized.  Export
    ``REPRO_BENCH_SCALE=5`` (etc.) to stretch every sweep.
    """
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", "1"))
    except ValueError:
        return 1.0


def scaled(value: int, minimum: int = 1) -> int:
    return max(minimum, int(value * bench_scale()))
