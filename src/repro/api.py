"""The unified public API: one session object, explicit config objects.

This module is the front door of the reproduction.  Everything a caller
configures is a frozen dataclass, everything a pipeline step returns is
a typed result, and the whole lifecycle — load, ground, infer, query,
serve, shut down — hangs off one :class:`ExpansionSession`::

    from repro.api import (
        BackendConfig, ExpansionSession, GroundingConfig, MPPConfig,
    )

    config = BackendConfig(kind="mpp", mpp=MPPConfig(num_segments=8,
                                                     num_workers=4))
    with ExpansionSession(kb, backend=config) as session:
        grounding = session.ground()        # GroundingResult
        marginals = session.infer()         # InferenceResult
        facts = session.query(relation="bornIn", min_probability=0.5)

Migration from the pre-config API (see ``docs/api.md`` for the full
table): keyword sprawl like ``ProbKB(kb, backend="mpp", nseg=8,
use_matviews=False)`` becomes ``backend=BackendConfig(kind="mpp",
mpp=MPPConfig(num_segments=8, policy="naive"))``; the old spellings
still work but emit :class:`DeprecationWarning`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:
    from .delta import DeltaExpander, DeltaResult

from .analyze import (
    AnalysisReport,
    PlanEnvironment,
    StaticPlanReport,
    analyze as analyze_kb,
)
from .core.backends import Backend
from .core.clauses import HornClause
from .core.config import (
    ANALYSIS_MODES,
    BackendConfig,
    GroundingConfig,
    InferenceConfig,
    MPPConfig,
    build_backend,
)
from .core.grounding import GroundingResult, IterationStats
from .core.model import Fact, KnowledgeBase
from .core.probkb import ProbKB
from .core.results import ConstraintResult, InferenceResult
from .infer.registry import (
    InferenceEngine,
    build_engine,
    register_engine,
    registered_engines,
)
from .relational.verify import VerificationReport

__all__ = [
    "ANALYSIS_MODES",
    "AnalysisReport",
    "BackendConfig",
    "ConstraintResult",
    "ExpansionSession",
    "GroundingConfig",
    "GroundingResult",
    "InferenceConfig",
    "InferenceEngine",
    "InferenceResult",
    "IterationStats",
    "MPPConfig",
    "VerificationReport",
    "build_backend",
    "build_engine",
    "register_engine",
    "registered_engines",
]


class ExpansionSession:
    """A knowledge-expansion session over one KB.

    Thin, stateful facade over :class:`~repro.ProbKB`: construction
    takes only config objects, pipeline steps return typed results, and
    the session owns backend resources (MPP worker pools), released by
    :meth:`close` or the context manager.

    Not safe for concurrent use — wrap it with :meth:`serve` for a
    thread-safe front end.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        *,
        backend: Union[BackendConfig, Backend] = BackendConfig(),
        grounding: GroundingConfig = GroundingConfig(),
        inference: InferenceConfig = InferenceConfig(),
    ) -> None:
        self.probkb = ProbKB(
            kb, backend=backend, grounding=grounding, inference=inference
        )
        self._delta: Optional["DeltaExpander"] = None

    @classmethod
    def from_snapshot(
        cls,
        path: str,
        *,
        backend: Union[BackendConfig, Backend] = BackendConfig(),
        inference: InferenceConfig = InferenceConfig(),
    ) -> "ExpansionSession":
        """Warm-start a session from a snapshot file (no grounding run)."""
        from .serve.snapshot import load_snapshot

        session = cls.__new__(cls)
        session.probkb = load_snapshot(path, backend=backend)
        session.probkb.inference_config = inference
        session._delta = None
        return session

    # -- config & lifecycle -------------------------------------------------

    @property
    def kb(self) -> KnowledgeBase:
        return self.probkb.kb

    @property
    def backend(self) -> Backend:
        return self.probkb.backend

    @property
    def grounding_config(self) -> GroundingConfig:
        return self.probkb.grounding_config

    @property
    def inference_config(self) -> InferenceConfig:
        return self.probkb.inference_config

    @property
    def generation(self) -> int:
        return self.probkb.generation

    def executor_info(self) -> Dict[str, object]:
        """How the backend executes work (serial / multiprocess, workers)."""
        return self.probkb.backend.executor_info()

    def inference_info(self) -> Dict[str, object]:
        """How marginal inference runs (engine, workers, colours, last
        wall clock) — the inference counterpart of :meth:`executor_info`."""
        return self.probkb.inference_info()

    def close(self) -> None:
        self.probkb.close()

    def __enter__(self) -> "ExpansionSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- pipeline -----------------------------------------------------------

    def apply_constraints(self) -> ConstraintResult:
        """Run Query 3 once (up-front cleaning)."""
        return self.probkb.apply_constraints()

    def ground(self, max_iterations: Optional[int] = None) -> GroundingResult:
        """Run Algorithm 1 to closure (bounded by the grounding config)."""
        return self.probkb.ground(max_iterations)

    def add_evidence(
        self,
        facts: Sequence[Fact],
        max_iterations: Optional[int] = None,
    ) -> GroundingResult:
        """Incrementally expand with new extracted evidence."""
        return self.probkb.add_evidence(facts, max_iterations=max_iterations)

    def expand_delta(
        self,
        facts: Sequence[Fact],
        max_iterations: Optional[int] = None,
        inference: Optional[InferenceConfig] = None,
    ) -> "DeltaResult":
        """Incrementally expand *and* refresh marginals at O(delta) cost.

        Unlike :meth:`add_evidence` (which rebuilds TΦ and leaves new
        facts unscored until the next :meth:`materialize_marginals`),
        this grounds only the flush's consequences, re-samples only the
        factor-graph components the new ground clauses touch, and
        splices the refreshed marginals into TProb — bit-identical to a
        full componentwise re-expansion at the same seed.  The first
        call primes the baseline (one full expansion); see
        ``docs/incremental.md``.

        ``inference`` pins the delta sampler's config on the first call
        (default: the session's); gibbs configs with ``num_workers >= 2``
        re-sample big touched components on the worker pool.  Passing a
        different config after the baseline is primed raises — the
        splice contract requires one config per expander lifetime.
        """
        if self._delta is None:
            from .delta import DeltaExpander

            self._delta = DeltaExpander(self.probkb, inference=inference)
        elif inference is not None and inference != self._delta.inference:
            raise ValueError(
                "expand_delta inference config cannot change after the "
                "baseline is primed; keep one config per session"
            )
        return self._delta.expand_delta(facts, max_iterations)

    def add_rules(
        self,
        rules: Sequence[HornClause],
        max_iterations: Optional[int] = None,
    ) -> GroundingResult:
        """Incrementally expand with new deductive rules.

        The session's ``GroundingConfig.analysis`` gate screens the
        combined program first; ``"strict"`` rejects the batch with
        :class:`~repro.analyze.AnalysisError` without changing the KB.
        """
        return self.probkb.add_rules(rules, max_iterations=max_iterations)

    def analyze(self) -> AnalysisReport:
        """Run the static analyzer over the session's KB (pure; see
        :mod:`repro.analyze`).  Independent of the pre-flight gate — it
        always runs, whatever ``GroundingConfig.analysis`` says."""
        return analyze_kb(
            self.kb, environment=PlanEnvironment.from_backend(self.backend)
        )

    def explain(self) -> StaticPlanReport:
        """Static EXPLAIN of every grounding query (Figure 4, estimated):
        plan trees with predicted rows, motions, and modelled seconds for
        this session's backend, computed purely from statistics."""
        return self.probkb.explain()

    def verify_plans(self) -> List[VerificationReport]:
        """PlanCheck over every grounding query of this session's KB:
        logical-plan soundness (PKB201-208) plus, on a multi-segment
        cluster, the static physical plans' distribution soundness
        (PKB209-212).  Pure — nothing executes.  Complements the
        runtime ``PROBKB_VERIFY_PLANS`` /
        ``BackendConfig(verify_plans=True)`` gate, which checks the
        plans actually executed (see ``docs/plan-ir.md``)."""
        return self.probkb.verify_plans()

    def infer(self, config: Optional[InferenceConfig] = None) -> InferenceResult:
        """Marginal inference with the session's (or the given) config."""
        return self.probkb.infer(config)

    def materialize_marginals(
        self,
        marginals: Optional[Dict[Fact, float]] = None,
        config: Optional[InferenceConfig] = None,
    ) -> int:
        """Compute (if needed) and store marginals in table TProb."""
        return self.probkb.materialize_marginals(marginals, config)

    # -- results ------------------------------------------------------------

    def query(
        self,
        relation: Optional[str] = None,
        subject: Optional[str] = None,
        object: Optional[str] = None,
        min_probability: float = 0.0,
    ) -> List[Tuple[Fact, Optional[float]]]:
        """Pattern-query the expanded KB with stored probabilities."""
        return self.probkb.query_facts(
            relation=relation,
            subject=subject,
            object=object,
            min_probability=min_probability,
        )

    def new_facts(
        self,
        marginals: Optional[Dict[Fact, float]] = None,
        min_probability: float = 0.0,
    ) -> List[Tuple[Fact, Optional[float]]]:
        return self.probkb.new_facts(marginals, min_probability=min_probability)

    def all_facts(self) -> List[Fact]:
        return self.probkb.all_facts()

    def fact_count(self) -> int:
        return self.probkb.fact_count()

    def factor_count(self) -> int:
        return self.probkb.factor_count()

    @property
    def elapsed_seconds(self) -> float:
        """Modelled engine time accumulated so far."""
        return self.probkb.elapsed_seconds

    # -- serving ------------------------------------------------------------

    def serve(self, config=None):
        """Wrap this session in a concurrency-safe :class:`KBService`.

        The service (and its ingest worker) takes over mutation; use its
        lifecycle (``start``/``stop`` or context manager) from here on.
        """
        from .serve.engine import KBService

        return KBService(self.probkb, config)

    def save_snapshot(self, path: str) -> str:
        """Persist the expanded KB + marginals for warm restarts."""
        from .serve.snapshot import save_snapshot

        return save_snapshot(self.probkb, path)
