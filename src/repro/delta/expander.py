"""DeltaExpander: ingest → refreshed marginals at O(delta) cost.

Drives both delta stages and maintains the materialized state they
update: the connected-component index, the in-memory marginals map, and
the TProb table.  The flow is split into three phases so the serve
layer can double-buffer flushes:

- :meth:`ground` (needs the write lock): delta-ground the flush, fold
  the new factors into the component index, and snapshot the touched
  components' payloads.  Snapshots are *copies* — the index's
  small-to-large merging mutates payload lists in place, so a later
  flush's ``ground`` may not disturb an in-flight inference.
- :meth:`infer` (lock-free, pure): re-sample the snapshot components.
- :meth:`commit` (write lock): splice the refreshed marginals into the
  previous result and upsert them into TProb.

Because each component's marginals depend only on its own members,
factors, and seed (see :mod:`repro.delta.inference`), the spliced
result is bit-identical to re-sampling the whole factor graph
componentwise from scratch.  The delta path is Gibbs-only.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, TYPE_CHECKING

from ..core.config import InferenceConfig
from ..relational import Project, Scan, col
from ..relational import schema as make_schema
from ..relational.types import Row
from .components import ComponentIndex
from .grounding import DeltaGrounder, DeltaGroundingResult
from .inference import sample_components

if TYPE_CHECKING:
    from ..core.model import Fact
    from ..core.probkb import ProbKB

#: (anchor, sorted member ids, factor rows) — a component frozen at ground time
ComponentSnapshot = Tuple[int, List[int], List[Row]]


@dataclass
class PendingDelta:
    """A grounded-but-not-yet-inferred flush, safe to sample off-lock."""

    grounding: DeltaGroundingResult
    snapshots: List[ComponentSnapshot]
    touched_relations: FrozenSet[str]
    full_rebuild: bool = False

    @property
    def touched_components(self) -> int:
        return len(self.snapshots)

    @property
    def resampled_variables(self) -> int:
        return sum(len(members) for _, members, _ in self.snapshots)


@dataclass
class DeltaResult:
    """Outcome of one :meth:`DeltaExpander.expand_delta` call."""

    added_evidence: int
    new_facts: int
    new_factors: int
    touched_components: int
    resampled_variables: int
    touched_relations: FrozenSet[str]
    full_rebuild: bool
    iterations: int
    converged: bool
    ground_seconds: float = 0.0
    infer_seconds: float = 0.0
    commit_seconds: float = 0.0

    @property
    def elapsed_seconds(self) -> float:
        return self.ground_seconds + self.infer_seconds + self.commit_seconds


class DeltaExpander:
    """Incremental expansion state machine over one :class:`ProbKB`."""

    def __init__(
        self, probkb: "ProbKB", inference: Optional[InferenceConfig] = None
    ) -> None:
        self.probkb = probkb
        self.inference = inference or probkb.inference_config
        #: pool driver for gibbs configs (None for other engines); big
        #: touched components ride the worker pool through it
        self.driver = probkb.inference_driver(self.inference)
        self.grounder = DeltaGrounder(probkb)
        self.index = ComponentIndex()
        self.marginals: Dict[int, float] = {}
        self._relation_of: Dict[int, int] = {}
        self._primed = False

    @property
    def primed(self) -> bool:
        return self._primed

    def invalidate(self) -> None:
        """Forget primed state after an error; the next flush re-primes."""
        self._primed = False

    # -- priming (full expansion, establishes the baseline) ----------------------

    def prime(self) -> None:
        """Full componentwise expansion: the baseline every delta splices
        into.  Also the recovery path after rule changes or errors."""
        if self.probkb.grounding is None:
            self.probkb.ground()
        rows = self.probkb.factor_rows()
        variable_ids = {
            var for row in rows for var in row[:3] if var is not None
        }
        self.index = ComponentIndex.from_factor_rows(variable_ids, rows)
        self.marginals = dict(
            sample_components(
                [
                    (self.index.members(root), self.index.factors(root))
                    for root in self.index.roots()
                ],
                self.inference.sweeps,
                self.inference.seed,
                driver=self.driver,
            )
        )
        self._relation_of = {
            row[0]: row[1]
            for row in self.probkb.backend.project("TP", ("I", "R"))
        }
        self._store_marginals(self.marginals, full=True)
        self.probkb.generation += 1
        self._primed = True

    # -- the three delta phases --------------------------------------------------

    def ground(
        self, facts: Sequence["Fact"], max_iterations: Optional[int] = None
    ) -> PendingDelta:
        """Phase A (write lock): merge the flush and snapshot its blast
        radius.  New facts are queryable (unscored) when this returns."""
        if not self._primed:
            self.prime()
        grounding = self.grounder.expand(facts, max_iterations)
        if grounding.full_rebuild:
            pending = self._rebuild_pending(grounding)
        else:
            touched = self.index.add_factors(grounding.new_factor_rows)
            for row in grounding.new_fact_rows:
                self._relation_of[row[0]] = row[1]
            snapshots: List[ComponentSnapshot] = [
                (
                    self.index.anchor(root),
                    self.index.members(root),
                    self.index.factors(root),
                )
                for root in sorted(touched, key=self.index.anchor)
            ]
            pending = PendingDelta(
                grounding=grounding,
                snapshots=snapshots,
                touched_relations=self._relation_names(snapshots, grounding),
            )
        self.probkb.generation += 1
        return pending

    def _rebuild_pending(self, grounding: DeltaGroundingResult) -> PendingDelta:
        """Constraint deletions made the index stale: rebuild it from the
        freshly re-grounded TΦ and schedule every component."""
        rows = grounding.new_factor_rows  # the whole rebuilt TΦ
        variable_ids = {
            var for row in rows for var in row[:3] if var is not None
        }
        self.index = ComponentIndex.from_factor_rows(variable_ids, rows)
        self._relation_of = {
            row[0]: row[1]
            for row in self.probkb.backend.project("TP", ("I", "R"))
        }
        self.marginals = {}
        snapshots: List[ComponentSnapshot] = [
            (
                self.index.anchor(root),
                self.index.members(root),
                self.index.factors(root),
            )
            for root in self.index.roots()
        ]
        return PendingDelta(
            grounding=grounding,
            snapshots=snapshots,
            touched_relations=frozenset(),
            full_rebuild=True,
        )

    def _relation_names(
        self, snapshots: Sequence[ComponentSnapshot], grounding: DeltaGroundingResult
    ) -> FrozenSet[str]:
        """Predicates whose query results the flush may have changed:
        relations of the new facts plus of every member of a touched
        component (their probabilities move)."""
        relation_ids = set(grounding.touched_relation_ids)
        for _, members, _ in snapshots:
            for member in members:
                rid = self._relation_of.get(member)
                if rid is not None:
                    relation_ids.add(rid)
        relations = self.probkb.rkb.relations
        return frozenset(relations.name(rid) for rid in relation_ids)

    def infer(self, pending: PendingDelta) -> Dict[int, float]:
        """Phase B (no lock): re-sample the snapshot components.  Pure —
        reads only the snapshots, so it may overlap a later ground()."""
        return sample_components(
            [(members, rows) for _anchor, members, rows in pending.snapshots],
            self.inference.sweeps,
            self.inference.seed,
            driver=self.driver,
        )

    def commit(self, pending: PendingDelta, refreshed: Dict[int, float]) -> None:
        """Phase C (write lock): splice the refreshed marginals in."""
        if pending.full_rebuild:
            self.marginals = dict(refreshed)
            self._store_marginals(refreshed, full=True)
        else:
            self.marginals.update(refreshed)
            self._store_marginals(refreshed, full=False)
        self.probkb.generation += 1
        self._primed = True

    def expand_delta(
        self, facts: Sequence["Fact"], max_iterations: Optional[int] = None
    ) -> DeltaResult:
        """Ground + infer + commit in one call (the non-pipelined path)."""
        started = time.perf_counter()  # lint: disable=RC003 (timing metadata, not sampling)
        pending = self.ground(facts, max_iterations)
        grounded = time.perf_counter()  # lint: disable=RC003 (timing metadata, not sampling)
        refreshed = self.infer(pending)
        inferred = time.perf_counter()  # lint: disable=RC003 (timing metadata, not sampling)
        self.commit(pending, refreshed)
        return DeltaResult(
            added_evidence=pending.grounding.added_evidence,
            new_facts=pending.grounding.new_facts,
            new_factors=pending.grounding.new_factors,
            touched_components=pending.touched_components,
            resampled_variables=pending.resampled_variables,
            touched_relations=pending.touched_relations,
            full_rebuild=pending.full_rebuild,
            iterations=len(pending.grounding.iterations),
            converged=pending.grounding.converged,
            ground_seconds=grounded - started,
            infer_seconds=inferred - grounded,
            commit_seconds=time.perf_counter() - inferred,  # lint: disable=RC003 (timing metadata, not sampling)
        )

    # -- TProb maintenance -------------------------------------------------------

    def _store_marginals(self, marginals: Dict[int, float], full: bool) -> None:
        backend = self.probkb.backend
        if not backend.has_table("TProb"):
            backend.create_table(
                make_schema("TProb", "I:int", "p:float", unique_key=["I"]),
                dist_keys=["I"],
            )
        rows = sorted(marginals.items())
        if full:
            backend.truncate("TProb")
            backend.insert_rows("TProb", rows)
            return
        if not rows:
            return
        # upsert through a scratch table: delete the refreshed ids, then
        # re-insert — both sides stay inside the engine
        if not backend.has_table("TProbNew"):
            backend.create_table(
                make_schema("TProbNew", "I:int", "p:float"), dist_keys=["I"]
            )
        backend.truncate("TProbNew")
        backend.insert_rows("TProbNew", rows)
        backend.delete_in(
            "TProb",
            ["I"],
            Project(Scan("TProbNew", "N"), [(col("N.I"), "I")]),
        )
        backend.insert_from("TProb", Scan("TProbNew", "N"))
