"""Incremental connected-component index over the ground factor graph.

Facts are variables; each ground factor (a TΦ row) connects the facts it
mentions.  Marginals factorise over connected components, so a flush
that adds factors only perturbs the components those factors touch —
everything else keeps its marginals verbatim (see
:mod:`repro.delta.inference`).

The index is a union-find with union by size and path halving, extended
with per-root member and factor-row lists merged small-to-large, so
``add_factors`` over a delta is near-linear in the delta size and the
touched components' payloads are available without a full scan of TΦ.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from ..relational.types import Row


class ComponentIndex:
    """Union-find over fact ids, carrying each component's payload.

    Per canonical root the index keeps the component's member fact ids,
    the TΦ rows whose participants all lie in the component, and the
    minimum member id (a stable anchor for per-component seeding —
    unions can only shrink it deterministically).
    """

    def __init__(self) -> None:
        self._parent: Dict[int, int] = {}
        self._size: Dict[int, int] = {}
        self._members: Dict[int, List[int]] = {}
        self._factors: Dict[int, List[Row]] = {}
        self._min: Dict[int, int] = {}

    @classmethod
    def from_factor_rows(cls, variable_ids: Iterable[int], rows: Iterable[Row]) -> "ComponentIndex":
        index = cls()
        for var in variable_ids:
            index.add_variable(var)
        index.add_factors(rows)
        return index

    def __contains__(self, var: int) -> bool:
        return var in self._parent

    def __len__(self) -> int:
        return len(self._members)

    def add_variable(self, var: int) -> None:
        """Register a fact id as its own singleton component (idempotent)."""
        if var in self._parent:
            return
        self._parent[var] = var
        self._size[var] = 1
        self._members[var] = [var]
        self._factors[var] = []
        self._min[var] = var

    def find(self, var: int) -> int:
        root = var
        while self._parent[root] != root:
            # path halving: point every other node at its grandparent
            self._parent[root] = self._parent[self._parent[root]]
            root = self._parent[root]
        return root

    def _union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        # small-to-large: rb's payload folds into ra's
        self._parent[rb] = ra
        self._size[ra] += self._size.pop(rb)
        self._members[ra].extend(self._members.pop(rb))
        self._factors[ra].extend(self._factors.pop(rb))
        self._min[ra] = min(self._min[ra], self._min.pop(rb))
        return ra

    def add_factors(self, rows: Iterable[Row]) -> Set[int]:
        """Fold new TΦ rows into the index; return the touched roots.

        Participants absent from the index are registered on the fly
        (singleton evidence facts appear in TΦ only via their unit
        factor).  The returned roots are canonical *after* all unions,
        so they index directly into :meth:`members` / :meth:`factors`.
        """
        dirty: List[int] = []
        for row in rows:
            participants = [var for var in row[:3] if var is not None]
            for var in participants:
                self.add_variable(var)
            root = participants[0]
            for var in participants[1:]:
                root = self._union(root, var)
            self._factors[self.find(root)].append(row)
            dirty.append(root)
        return {self.find(root) for root in dirty}

    def members(self, root: int) -> List[int]:
        """Sorted member fact ids of the component rooted at ``root``."""
        return sorted(self._members[self.find(root)])

    def factors(self, root: int) -> List[Row]:
        return list(self._factors[self.find(root)])

    def anchor(self, root: int) -> int:
        """Minimum member id — the component's deterministic seed anchor."""
        return self._min[self.find(root)]

    def roots(self) -> List[int]:
        """All canonical roots, ordered by their anchors (deterministic)."""
        return sorted(self._members, key=lambda root: self._min[root])

    def component_count(self) -> int:
        return len(self._members)
