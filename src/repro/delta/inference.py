"""Component-scoped Gibbs: deterministic per-component marginals.

Marginals factorise over connected components of the factor graph, so
each component can be sampled independently — and, crucially for the
delta path, *re*-sampled independently: as long as a component's member
set, factor set, and seed are unchanged, its marginals are bit-identical
no matter what happened elsewhere in the KB.

Two ingredients make that hold:

1. **Canonical graph construction** — variables are registered in sorted
   id order and clauses added in sorted ``(head, body...)`` order, so the
   chromatic Gibbs sweep (which iterates colors in registration order)
   is a pure function of the component's *set* of rows.
2. **Per-component seeds** — each component derives its RNG seed from
   the base seed and its minimum member id via a splitmix-style mix, so
   sampling order and the fate of other components are irrelevant.

Sampling uses the counter-based stream kernel
(:meth:`~repro.infer.gibbs.GibbsSampler.run_stream`), whose draws are a
pure function of ``(seed, sweep, color, var)`` — the same property that
lets :mod:`repro.infer.parallel` shard a component across worker
processes with bit-identical marginals.  Callers that hold a parallel
driver pass it via the ``driver=`` parameters here; ``None`` means
sample serially in-process.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, TYPE_CHECKING

from ..infer.factor_graph import FactorGraph
from ..infer.gibbs import GibbsSampler
from ..relational.types import Row
from .components import ComponentIndex

if TYPE_CHECKING:
    from ..infer.parallel import ParallelGibbsDriver

_MASK = (1 << 64) - 1


def component_seed(base_seed: int, anchor: int) -> int:
    """Mix the run seed with a component's anchor (its min member id).

    splitmix64-style finalizer: decorrelates neighbouring anchors so
    components with ids 17 and 18 do not sample near-identical chains.
    """
    z = (
        (base_seed & _MASK) * 0x9E3779B97F4A7C15
        + (anchor & _MASK) * 0xBF58476D1CE4E5B9
        + 0x94D049BB133111EB
    ) & _MASK
    z ^= z >> 31
    return z


def _clause_sort_key(row: Row) -> Tuple[int, int, int, float]:
    head, body2, body3, weight = row
    return (head, -1 if body2 is None else body2, -1 if body3 is None else body3, weight)


def build_component_graph(member_ids: Iterable[int], rows: Iterable[Row]) -> FactorGraph:
    """Canonical factor graph for one component.

    Registration order fixes the chromatic sweep order, so it must be a
    function of the component's contents alone: members sorted by id,
    clauses sorted by ``(head, body ids, weight)``.
    """
    graph = FactorGraph()
    for var in sorted(member_ids):
        graph.variable(var)
    for row in sorted(rows, key=_clause_sort_key):
        head, body2, body3, weight = row
        body = [var for var in (body2, body3) if var is not None]
        graph.add_clause(head, body, weight)
    return graph


def sample_component(
    member_ids: Iterable[int],
    rows: Iterable[Row],
    num_sweeps: int,
    seed: int,
) -> Dict[int, float]:
    """Marginals for one component, seeded by its anchor."""
    members = sorted(member_ids)
    graph = build_component_graph(members, rows)
    sampler = GibbsSampler(graph, seed=component_seed(seed, members[0]))
    return sampler.run_stream(num_sweeps=num_sweeps).marginals


def sample_components(
    snapshots: Sequence[Tuple[List[int], List[Row]]],
    num_sweeps: int,
    seed: int,
    driver: Optional["ParallelGibbsDriver"] = None,
) -> Dict[int, float]:
    """Marginals over a batch of ``(members, rows)`` component snapshots.

    With a driver the batch runs on the worker pool; without one it runs
    serially in-process.  Either way the result is bit-identical — the
    driver's contract (see :mod:`repro.infer.parallel`).
    """
    if driver is not None:
        return driver.sample_components(snapshots, num_sweeps, seed)
    marginals: Dict[int, float] = {}
    for members, rows in snapshots:
        marginals.update(sample_component(members, rows, num_sweeps, seed))
    return marginals


def componentwise_marginals(
    rows: Sequence[Row],
    num_sweeps: int,
    seed: int,
    driver: Optional["ParallelGibbsDriver"] = None,
) -> Dict[int, float]:
    """Marginals over a full TΦ, sampled one component at a time.

    This is the full-expansion reference the delta path is bit-identical
    to: a delta flush re-runs :func:`sample_component` on the touched
    components with the same inputs this function would give them.
    """
    variable_ids = {var for row in rows for var in row[:3] if var is not None}
    index = ComponentIndex.from_factor_rows(variable_ids, rows)
    snapshots = [
        (index.members(root), index.factors(root)) for root in index.roots()
    ]
    return sample_components(snapshots, num_sweeps, seed, driver=driver)
