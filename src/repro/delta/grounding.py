"""Delta grounding: O(delta) factor maintenance for a flush of evidence.

Atom closure already costs O(delta) under the semi-naive grounder; the
expensive part of the existing ingest path is rebuilding TΦ from
scratch (factors are a function of the final atom set).  This module
avoids the rebuild: every fact merged during the flush — evidence and
derived — is captured with its id in TDAcc, and for each partition the
Query 2-i join is re-run with TDAcc substituted for each occurrence of
the facts table (both body positions and the head).  A ground factor is
*new* exactly when at least one participant is new (the rules are
monotone), so the union of the per-occurrence delta joins is exactly
TΦ_new; staging it through TFNew's unique key removes the overlap
between variants (a factor whose head *and* a body atom are both new
appears in two variants) without disturbing the cross-partition bag
semantics of TΦ (Proposition 1: within a partition the join output is
duplicate-free).

Constraint violations break monotonicity — applyConstraints deletes
facts, which can orphan existing factors — so a flush that removed
anything falls back to a full TΦ rebuild (reported via
``full_rebuild``; see docs/incremental.md for the ops guidance).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, TYPE_CHECKING

from ..core.grounding import Grounder, IterationStats
from ..core.sqlgen import (
    DELTA_FACTS_TABLE,
    ground_factors_delta_plans,
    singleton_factors_plan,
)
from ..relational import Scan
from ..relational.types import Row

if TYPE_CHECKING:
    from ..core.model import Fact
    from ..core.probkb import ProbKB


@dataclass
class DeltaGroundingResult:
    """What one delta-grounding pass merged into TΠ and TΦ."""

    added_evidence: int  # genuinely new evidence facts (post anti-join)
    new_fact_rows: List[Row]  # captured (I, R, x, C1, y, C2, w) TΠ rows
    new_factor_rows: List[Row]  # TΦ rows added (or ALL rows on rebuild)
    iterations: List[IterationStats] = field(default_factory=list)
    converged: bool = True
    removed_facts: int = 0
    full_rebuild: bool = False
    elapsed_seconds: float = 0.0

    @property
    def new_facts(self) -> int:
        return len(self.new_fact_rows)

    @property
    def new_factors(self) -> int:
        return len(self.new_factor_rows)

    @property
    def touched_relation_ids(self) -> Set[int]:
        """Relation ids of every fact the flush added (column R)."""
        return {row[1] for row in self.new_fact_rows}


class DeltaGrounder:
    """Grounds one evidence flush incrementally against a ProbKB."""

    def __init__(self, probkb: "ProbKB") -> None:
        self.probkb = probkb
        self.rkb = probkb.rkb
        self.backend = probkb.backend

    def expand(
        self, facts: Sequence["Fact"], max_iterations: Optional[int] = None
    ) -> DeltaGroundingResult:
        """Merge ``facts``, close the atoms, and maintain TΦ in O(delta)."""
        started = time.perf_counter()  # lint: disable=RC003 (timing metadata, not sampling)
        rkb = self.rkb
        grounder = Grounder(
            rkb,
            apply_constraints=self.probkb.grounding_config.apply_constraints,
            semi_naive=True,
        )
        rkb.begin_delta_capture()
        try:
            added = rkb.add_evidence(facts)
            iterations, converged = grounder.ground_atoms(max_iterations)
        finally:
            rkb.end_delta_capture()
        result = DeltaGroundingResult(
            added_evidence=added,
            new_fact_rows=rkb.delta_capture_rows(),
            new_factor_rows=[],
            iterations=iterations,
            converged=converged,
            removed_facts=sum(stats.removed_facts for stats in iterations),
        )
        if result.removed_facts > 0:
            # applyConstraints deleted facts: existing factors may now be
            # orphaned, so incremental maintenance is unsound — rebuild.
            result.full_rebuild = True
            self.backend.truncate("TF")
            grounder.ground_factors()
            result.new_factor_rows = self.backend.query(Scan("TF")).rows
        else:
            result.new_factor_rows = self._ground_delta_factors()
        result.elapsed_seconds = time.perf_counter() - started  # lint: disable=RC003 (timing metadata, not sampling)
        return result

    def _ground_delta_factors(self) -> List[Row]:
        """Query 2-i with TDAcc substituted per facts-table occurrence."""
        backend = self.backend
        staged: List[Row] = []
        for partition in self.rkb.nonempty_partitions:
            backend.truncate("TFNew")
            for plan in ground_factors_delta_plans(partition, backend):
                backend.insert_from("TFNew", plan)
            rows = backend.query(Scan("TFNew", "F")).rows
            if rows:
                backend.insert_from("TF", Scan("TFNew", "F"))
                staged.extend(rows)
        # unit factors for the flush's new *evidence* facts (non-NULL w)
        backend.truncate("TFNew")
        backend.insert_from(
            "TFNew", singleton_factors_plan(backend, table=DELTA_FACTS_TABLE)
        )
        rows = backend.query(Scan("TFNew", "F")).rows
        if rows:
            backend.insert_from("TF", Scan("TFNew", "F"))
            staged.extend(rows)
        return staged
