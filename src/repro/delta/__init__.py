"""Incremental expansion: delta grounding + component-scoped delta inference.

The serve layer's flush path pays O(KB) per batch when it re-runs
Algorithm 1 and Gibbs over the whole factor graph.  This package makes
that cost O(delta):

- :mod:`repro.delta.grounding` seeds semi-naive evaluation from only the
  newly flushed facts and derives just the *new* ground factors by
  substituting the delta relation into each occurrence of the facts
  table in the six partition join patterns.
- :mod:`repro.delta.components` maintains an incremental
  connected-component index over the factor graph so inference knows
  which islands a flush touched.
- :mod:`repro.delta.inference` re-samples only touched components with
  per-component seeds, leaving untouched marginals verbatim.
- :mod:`repro.delta.expander` drives both stages behind
  ``DeltaExpander.expand_delta(facts)`` with a ground/infer/commit split
  the serve layer double-buffers.
"""

from .components import ComponentIndex
from .expander import DeltaExpander, DeltaResult, PendingDelta
from .grounding import DeltaGrounder, DeltaGroundingResult
from .inference import build_component_graph, component_seed, componentwise_marginals, sample_component

__all__ = [
    "ComponentIndex",
    "DeltaExpander",
    "DeltaGrounder",
    "DeltaGroundingResult",
    "DeltaResult",
    "PendingDelta",
    "build_component_graph",
    "component_seed",
    "componentwise_marginals",
    "sample_component",
]
