"""First-class inference engines: a registry mirroring ``build_backend``.

The redesigned :class:`~repro.api.InferenceConfig` names an *engine*
instead of hard-coding ``method in ("gibbs", "bp")``.  Engines are
constructed through this registry, so adding one is::

    from repro.infer.registry import register_engine

    register_engine("my-engine", MyEngine)

and every surface — ``ProbKB.infer``, ``ExpansionSession``, the CLI's
``--engine`` flag, the serving layer — picks it up, the same way
``build_backend`` resolves backend specs.

An engine is any object with the :class:`InferenceEngine` surface:
``marginals(rows, config)`` mapping TΦ rows to ``{fact id: P(true)}``,
plus ``info()`` and ``close()``.  The built-ins:

- ``"gibbs"`` — componentwise chromatic Gibbs via the stream kernel;
  with ``num_workers >= 2`` it samples on the persistent worker pool
  (:mod:`repro.infer.parallel`) with bit-identical marginals.
- ``"bp"`` — loopy belief propagation over the full graph
  (deterministic, no workers).
"""

from __future__ import annotations

import time
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Protocol,
    Sequence,
    Tuple,
    TYPE_CHECKING,
    Union,
)

from ..relational.types import Row
from .factor_graph import FactorGraph

if TYPE_CHECKING:
    from ..core.config import InferenceConfig


class InferenceEngine(Protocol):
    """What the registry hands back: the engine surface ProbKB drives."""

    name: str

    def marginals(
        self, rows: Sequence[Row], config: "InferenceConfig"
    ) -> Dict[int, float]:
        """P(fact is true) keyed by fact id, over TΦ rows."""
        ...

    def info(self) -> Dict[str, Any]:
        """Introspection payload for ``GET /stats`` / ``repro infer``."""
        ...

    def close(self) -> None:
        """Release engine resources (worker pools); idempotent."""
        ...


EngineFactory = Callable[["InferenceConfig"], InferenceEngine]

_REGISTRY: Dict[str, EngineFactory] = {}


def register_engine(name: str, factory: EngineFactory) -> None:
    """Register (or replace) an engine factory under ``name``."""
    if not name or not isinstance(name, str):
        raise ValueError(f"engine name must be a non-empty string, got {name!r}")
    _REGISTRY[name] = factory


def registered_engines() -> Tuple[str, ...]:
    """Registered engine names, sorted — for error messages and docs."""
    return tuple(sorted(_REGISTRY))


EngineSpec = Union["InferenceConfig", InferenceEngine, str]


def build_engine(spec: "InferenceConfig | str | InferenceEngine") -> InferenceEngine:
    """Resolve an engine spec to a live :class:`InferenceEngine`.

    Accepts an :class:`~repro.api.InferenceConfig`, an already-built
    engine (returned as-is), or an engine name (resolved with default
    tuning) — mirroring :func:`~repro.api.build_backend`.
    """
    from ..core.config import InferenceConfig

    if isinstance(spec, str):
        spec = InferenceConfig(engine=spec)
    if isinstance(spec, InferenceConfig):
        factory = _REGISTRY.get(spec.engine)
        if factory is None:
            raise ValueError(
                f"unknown inference engine {spec.engine!r} "
                f"(registered: {', '.join(registered_engines())})"
            )
        return factory(spec)
    if hasattr(spec, "marginals"):
        return spec
    raise TypeError(
        "expected InferenceConfig, InferenceEngine, or an engine name; "
        f"got {spec!r}"
    )


# ------------------------------------------------------------ built-ins


class GibbsEngine:
    """Componentwise chromatic Gibbs, optionally on the worker pool.

    Sampling always goes component-by-component through the stream
    kernel, so serial (``num_workers=0``) and pooled runs are
    bit-identical at a fixed seed — the determinism contract
    :mod:`repro.infer.parallel` documents.
    """

    name = "gibbs"

    def __init__(self, config: "InferenceConfig") -> None:
        from .parallel import ParallelGibbsDriver

        self.config = config
        self.driver = ParallelGibbsDriver(
            num_workers=config.num_workers,
            worker_timeout=config.worker_timeout,
            shard_threshold=config.shard_threshold,
        )

    def marginals(
        self, rows: Sequence[Row], config: "InferenceConfig"
    ) -> Dict[int, float]:
        from ..delta.components import ComponentIndex

        variable_ids = {
            var for row in rows for var in row[:3] if var is not None
        }
        index = ComponentIndex.from_factor_rows(variable_ids, rows)
        snapshots: List[Tuple[List[int], List[Row]]] = [
            (index.members(root), index.factors(root))
            for root in index.roots()
        ]
        return self.driver.sample_components(
            snapshots, config.sweeps, config.seed
        )

    def info(self) -> Dict[str, Any]:
        return {"engine": self.name, **self.driver.info()}

    def close(self) -> None:
        self.driver.close()


class BPEngine:
    """Loopy belief propagation over the full graph (no workers)."""

    name = "bp"

    def __init__(self, config: "InferenceConfig") -> None:
        self.config = config
        self._last: Dict[str, Any] = {}

    def marginals(
        self, rows: Sequence[Row], config: "InferenceConfig"
    ) -> Dict[int, float]:
        from .bp import bp_marginals

        started = time.perf_counter()  # lint: disable=RC003 (timing metadata, not sampling)
        result = bp_marginals(FactorGraph.from_factor_rows(rows))
        self._last = {
            "iterations": result.iterations,
            "converged": result.converged,
            "wall_seconds": time.perf_counter() - started,  # lint: disable=RC003 (timing metadata, not sampling)
        }
        return result.marginals

    def info(self) -> Dict[str, Any]:
        return {"engine": self.name, "num_workers": 0, **self._last}

    def close(self) -> None:
        return None


register_engine("gibbs", GibbsEngine)
register_engine("bp", BPEngine)
