"""Approximate MAP inference: the most likely world.

ProbKB uses marginal inference in production (Section 2.2), but the
paper names maximum a posteriori (MAP) inference as the other standard
task.  This module provides two scalable approximations validated
against the exact enumerator on small graphs:

* :func:`icm_map` — iterated conditional modes: greedy coordinate
  ascent; fast, converges to a local optimum.
* :func:`annealed_map` — Gibbs sampling with a geometric temperature
  schedule (simulated annealing), escaping local optima at the price of
  more sweeps.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .factor_graph import FactorGraph


@dataclass
class MAPResult:
    """An assignment with its unnormalized log score."""

    assignment: Dict[int, int]  # external id -> 0/1
    log_score: float
    sweeps: int

    def true_facts(self) -> List[int]:
        return sorted(fid for fid, value in self.assignment.items() if value)


def _local_delta(
    graph: FactorGraph, touching: Sequence[List[int]], state: List[int], var: int
) -> float:
    """log score(x_var=1) - log score(x_var=0) given the rest of state.

    Restores ``state[var]`` before returning.
    """
    original = state[var]
    delta = 0.0
    for factor_id in touching[var]:
        factor = graph.factors[factor_id]
        state[var] = 1
        delta += factor.log_potential(state)
        state[var] = 0
        delta -= factor.log_potential(state)
    state[var] = original
    return delta


def icm_map(
    graph: FactorGraph,
    max_sweeps: int = 100,
    initial_state: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> MAPResult:
    """Iterated conditional modes: flip each variable to its locally
    best value until a full sweep changes nothing."""
    n = graph.num_variables
    rng = random.Random(seed)
    state = (
        list(initial_state)
        if initial_state is not None
        else [rng.randint(0, 1) for _ in range(n)]
    )
    touching = graph.factors_touching()
    sweeps = 0
    for sweeps in range(1, max_sweeps + 1):  # noqa: B007 — read after the loop
        changed = False
        for var in range(n):
            delta = _local_delta(graph, touching, state, var)
            # ties keep the current value: strict ascent cannot cycle
            best = 1 if delta > 0 else 0 if delta < 0 else state[var]
            if state[var] != best:
                state[var] = best
                changed = True
            else:
                state[var] = best
        if not changed:
            break
    assignment = {graph.external_id(v): state[v] for v in range(n)}
    return MAPResult(assignment, graph.log_score(state), sweeps)


def annealed_map(
    graph: FactorGraph,
    num_sweeps: int = 300,
    initial_temperature: float = 2.0,
    final_temperature: float = 0.05,
    seed: int = 0,
) -> MAPResult:
    """Simulated annealing over the MLN energy.

    Samples each variable from the tempered conditional and tracks the
    best state seen; finishes with an ICM polish from that state.
    """
    n = graph.num_variables
    if n == 0:
        return MAPResult({}, 0.0, 0)
    rng = random.Random(seed)
    state = [rng.randint(0, 1) for _ in range(n)]
    touching = graph.factors_touching()
    best_state = list(state)
    best_score = graph.log_score(state)
    if num_sweeps > 1:
        cooling = (final_temperature / initial_temperature) ** (1 / (num_sweeps - 1))
    else:
        cooling = 1.0
    temperature = initial_temperature
    for _ in range(num_sweeps):
        for var in range(n):
            delta = _local_delta(graph, touching, state, var) / temperature
            if delta > 35:
                p_true = 1.0
            elif delta < -35:
                p_true = 0.0
            else:
                p_true = 1.0 / (1.0 + math.exp(-delta))
            state[var] = 1 if rng.random() < p_true else 0
        score = graph.log_score(state)
        if score > best_score:
            best_score = score
            best_state = list(state)
        temperature *= cooling
    polished = icm_map(graph, initial_state=best_state, seed=seed)
    if polished.log_score >= best_score:
        return MAPResult(polished.assignment, polished.log_score, num_sweeps)
    assignment = {graph.external_id(v): best_state[v] for v in range(n)}
    return MAPResult(assignment, best_score, num_sweeps)
