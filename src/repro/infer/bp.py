"""Loopy belief propagation (sum-product) on ground factor graphs.

An alternative marginal-inference engine (the paper cites residual/loopy
BP among the applicable algorithms).  Messages are kept in normalized
probability space with damping for stability on loopy graphs.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .factor_graph import ClauseFactor, FactorGraph


@dataclass
class BPResult:
    marginals: Dict[int, float]
    iterations: int
    converged: bool
    max_residual: float


def bp_marginals(
    graph: FactorGraph,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
    damping: float = 0.3,
) -> BPResult:
    """Run sum-product BP; returns P(X=1) keyed by external id.

    On tree-structured graphs the result is exact; on loopy graphs it is
    the usual loopy-BP approximation.
    """
    n_vars = graph.num_variables
    if n_vars == 0:
        return BPResult({}, 0, True, 0.0)

    # edges: (factor_id, slot) <-> variable
    edges: List[Tuple[int, int, int]] = []  # (factor, slot, var)
    for factor_id, factor in enumerate(graph.factors):
        for slot, var in enumerate(factor.variables):
            edges.append((factor_id, slot, var))

    # message[(factor, slot)] = factor->variable message (p0, p1)
    msg_fv: Dict[Tuple[int, int], Tuple[float, float]] = {
        (f, s): (0.5, 0.5) for f, s, _ in edges
    }
    # message[(factor, slot)] = variable->factor message (p0, p1)
    msg_vf: Dict[Tuple[int, int], Tuple[float, float]] = {
        (f, s): (0.5, 0.5) for f, s, _ in edges
    }

    var_edges: List[List[Tuple[int, int]]] = [[] for _ in range(n_vars)]
    for factor_id, slot, var in edges:
        var_edges[var].append((factor_id, slot))

    factors = graph.factors
    max_residual = math.inf
    iteration = 0
    for iteration in range(1, max_iterations + 1):  # noqa: B007 — read after the loop
        max_residual = 0.0
        # variable -> factor
        for var in range(n_vars):
            for factor_id, slot in var_edges[var]:
                p0, p1 = 1.0, 1.0
                for other_factor, other_slot in var_edges[var]:
                    if (other_factor, other_slot) == (factor_id, slot):
                        continue
                    m0, m1 = msg_fv[(other_factor, other_slot)]
                    p0 *= m0
                    p1 *= m1
                msg_vf[(factor_id, slot)] = _normalize(p0, p1)
        # factor -> variable
        for factor_id, factor in enumerate(factors):
            arity = len(factor.variables)
            for slot in range(arity):
                p0, p1 = 0.0, 0.0
                for assignment in itertools.product((0, 1), repeat=arity):
                    weight = _potential(factor, assignment)
                    for other_slot in range(arity):
                        if other_slot == slot:
                            continue
                        m = msg_vf[(factor_id, other_slot)]
                        weight *= m[assignment[other_slot]]
                    if assignment[slot]:
                        p1 += weight
                    else:
                        p0 += weight
                new = _normalize(p0, p1)
                old = msg_fv[(factor_id, slot)]
                damped = _normalize(
                    damping * old[0] + (1 - damping) * new[0],
                    damping * old[1] + (1 - damping) * new[1],
                )
                max_residual = max(max_residual, abs(damped[1] - old[1]))
                msg_fv[(factor_id, slot)] = damped
        if max_residual < tolerance:
            break

    marginals = {}
    for var in range(n_vars):
        p0, p1 = 1.0, 1.0
        for factor_id, slot in var_edges[var]:
            m0, m1 = msg_fv[(factor_id, slot)]
            p0 *= m0
            p1 *= m1
            if p0 + p1 < 1e-280:  # renormalize to avoid underflow
                p0, p1 = _normalize(p0, p1)
        p0, p1 = _normalize(p0, p1)
        marginals[graph.external_id(var)] = p1
    return BPResult(
        marginals=marginals,
        iterations=iteration,
        converged=max_residual < tolerance,
        max_residual=max_residual,
    )


def _potential(factor: ClauseFactor, assignment: Tuple[int, ...]) -> float:
    """Factor value e^W (satisfied) or 1, over the factor's own slots.

    ``assignment`` is indexed by slot: slot 0 is the head, the rest the
    body — mirror of :meth:`ClauseFactor.satisfied` on local indexes.
    """
    if len(assignment) == 1:
        satisfied = bool(assignment[0])
    elif all(assignment[1:]):
        satisfied = bool(assignment[0])
    else:
        satisfied = True
    return math.exp(factor.weight) if satisfied else 1.0


def _normalize(p0: float, p1: float) -> Tuple[float, float]:
    total = p0 + p1
    if total <= 0:
        return (0.5, 0.5)
    return (p0 / total, p1 / total)
