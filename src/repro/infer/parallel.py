"""Color-parallel Gibbs sampling on the persistent worker pool.

The paper hands TΦ to GraphLab's *parallel* chromatic Gibbs sampler;
this module is that role on our own infrastructure.  It reuses the
:class:`~repro.mpp.workers.WorkerPool` via the generic task protocol
(``("task", "module:attr", payload)``) and parallelises along two axes:

- **Across components.**  Marginals factorise over connected
  components, so whole components are independent jobs.  The shard
  planner packs small components into per-worker batches balanced by
  estimated cost.
- **Within big components.**  A component too large for one worker is
  sharded: every worker owns a contiguous range of the component's
  dense variable indexes and all workers sweep it together, one colour
  class at a time, with a barrier per colour — each worker ships the
  boundary states its peers need over the pool's exchange queues, then
  waits for theirs (Gonzalez et al., AISTATS'11).

Determinism contract: marginals are **bit-identical** to the serial
sampler at a fixed seed regardless of ``num_workers``.  Two properties
make this free rather than hard:

1. Every draw in :meth:`~repro.infer.gibbs.GibbsSampler.run_stream`
   is a pure function of ``(component seed, sweep, color, var)`` —
   no shared RNG stream to serialise.
2. :func:`~repro.delta.inference.build_component_graph` is canonical,
   so every process derives the same dense indexing and colouring from
   a component's content alone.

Crash handling mirrors the MPP executor: any
:class:`~repro.mpp.workers.WorkerCrashError` degrades the driver to
serial in-process sampling (same marginals, one ``RuntimeWarning``),
and it stays degraded until :meth:`ParallelGibbsDriver.reset`.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..mpp.workers import WorkerCrashError, WorkerPool, _WorkerState
from ..relational.types import Row
from .gibbs import GibbsSampler

#: components with at least this many variables are sharded across the
#: whole pool instead of sampled by a single worker
DEFAULT_SHARD_THRESHOLD = 512

_BATCH_TASK = "repro.infer.parallel:_task_sample_batch"
_SHARD_TASK = "repro.infer.parallel:_task_sample_shards"

#: ``(sorted member ids, factor rows)`` — one component's content
ComponentSnapshot = Tuple[List[int], List[Row]]


# ------------------------------------------------------------------ planning


@dataclass
class ShardPlan:
    """How a batch of component snapshots maps onto the pool.

    ``batches[w]`` holds the snapshot indexes worker ``w`` samples
    whole; ``sharded`` holds the indexes of components big enough to be
    swept by all workers together, in anchor order.
    """

    num_workers: int
    batches: List[List[int]] = field(default_factory=list)
    sharded: List[int] = field(default_factory=list)

    @property
    def batched_components(self) -> int:
        return sum(len(batch) for batch in self.batches)


def plan_shards(
    snapshots: Sequence[ComponentSnapshot],
    num_workers: int,
    shard_threshold: int = DEFAULT_SHARD_THRESHOLD,
) -> ShardPlan:
    """Partition components into per-worker batches plus sharded giants.

    Small components are packed greedily (largest first, onto the
    least-loaded worker, lowest id on ties) by estimated cost
    ``|members| + |factors|`` — deterministic, and good enough because
    correctness never depends on the assignment.
    """
    plan = ShardPlan(num_workers=num_workers, batches=[[] for _ in range(num_workers)])
    small: List[Tuple[int, int]] = []  # (cost, snapshot index)
    for index, (members, rows) in enumerate(snapshots):
        if len(members) >= shard_threshold:
            plan.sharded.append(index)
        else:
            small.append((len(members) + len(rows), index))
    small.sort(key=lambda pair: (-pair[0], pair[1]))
    loads = [0] * num_workers
    for cost, index in small:
        worker = min(range(num_workers), key=lambda w: (loads[w], w))
        plan.batches[worker].append(index)
        loads[worker] += cost
    return plan


def split_ranges(n: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into ``parts`` contiguous near-even ranges."""
    base, extra = divmod(n, parts)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for part in range(parts):
        end = start + base + (1 if part < extra else 0)
        ranges.append((start, end))
        start = end
    return ranges


# ------------------------------------------------------------ worker tasks


def _sample_batch(
    snapshots: Sequence[ComponentSnapshot], num_sweeps: int, seed: int
) -> Tuple[Dict[int, float], int]:
    """Sample whole components in-process; the serial reference.

    Returns ``(marginals, max colours seen)``.  This exact loop runs on
    the master in serial/degraded mode and inside each worker for its
    batch, which is what makes the two modes bit-identical.
    """
    from ..delta.inference import build_component_graph, component_seed

    marginals: Dict[int, float] = {}
    max_colors = 0
    for member_ids, rows in snapshots:
        members = sorted(member_ids)
        graph = build_component_graph(members, rows)
        sampler = GibbsSampler(graph, seed=component_seed(seed, members[0]))
        result = sampler.run_stream(num_sweeps=num_sweeps)
        marginals.update(result.marginals)
        max_colors = max(max_colors, result.num_colors)
    return marginals, max_colors


def _task_sample_batch(state: _WorkerState, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Pool task: sample this worker's batch of whole components."""
    marginals, colors = _sample_batch(
        payload["components"], payload["num_sweeps"], payload["seed"]
    )
    return {"marginals": marginals, "colors": colors}


def _run_shard_job(state: _WorkerState, job: Dict[str, Any]) -> Tuple[Dict[int, float], int]:
    """This worker's share of one sharded component's chromatic sweep.

    Rebuilds the canonical graph locally (identical in every process),
    sweeps only its contiguous range, and trades boundary states with
    its peers at the end of every colour.
    """
    from ..delta.inference import build_component_graph

    graph = build_component_graph(job["members"], job["rows"])
    sampler = GibbsSampler(graph, seed=job["seed"])
    ranges: List[Tuple[int, int]] = job["ranges"]
    participants: List[int] = job["participants"]
    me: int = job["me"]
    start, end = ranges[me]
    owned = list(range(start, end))
    if len(participants) == 1:
        result = sampler.run_stream(num_sweeps=job["num_sweeps"], owned=owned)
        return result.marginals, result.num_colors

    # vars each peer needs from me: my vars with a neighbour in its range
    neighbors = graph.neighbors()
    send_sets: Dict[int, set] = {}
    for position, peer in enumerate(participants):
        if position == me:
            continue
        peer_start, peer_end = ranges[position]
        send_sets[peer] = {
            var
            for var in owned
            if any(peer_start <= u < peer_end for u in neighbors[var])
        }
    peers = [peer for position, peer in enumerate(participants) if position != me]
    epoch_base = job["epoch_base"]

    def exchange(sweep: int, color: int, updates: Dict[int, int]) -> Dict[int, int]:
        # tuple epochs cannot collide with the integer motion epochs
        epoch = (epoch_base, sweep, color)
        for peer in peers:
            boundary = send_sets[peer]
            state.send_to_worker(
                epoch,
                peer,
                {var: value for var, value in updates.items() if var in boundary},
            )
        merged: Dict[int, int] = {}
        for piece in state.collect_from_workers(epoch, peers).values():
            merged.update(piece)
        return merged

    result = sampler.run_stream(
        num_sweeps=job["num_sweeps"], owned=owned, exchange=exchange
    )
    return result.marginals, result.num_colors


def _task_sample_shards(state: _WorkerState, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Pool task: sweep every sharded component, in the shared job order.

    All workers receive the same jobs in the same order (only ``me``
    differs), so the per-colour barriers line up and cannot deadlock.
    """
    marginals: Dict[int, float] = {}
    colors = 0
    for job in payload["jobs"]:
        piece, job_colors = _run_shard_job(state, job)
        marginals.update(piece)
        colors = max(colors, job_colors)
    return {"marginals": marginals, "colors": colors}


# ----------------------------------------------------------------- driver


class ParallelGibbsDriver:
    """Master-side driver: componentwise Gibbs over a worker pool.

    With ``num_workers < 2`` (or after a crash degraded it) the driver
    samples serially in-process — same marginals, no processes spawned.
    The pool itself is created lazily on the first pooled batch and
    persists across calls, like the MPP executor's.
    """

    def __init__(
        self,
        num_workers: int = 0,
        worker_timeout: float = 60.0,
        shard_threshold: int = DEFAULT_SHARD_THRESHOLD,
        start_method: Optional[str] = None,
    ) -> None:
        if num_workers < 0:
            raise ValueError(f"num_workers must be >= 0, got {num_workers}")
        if shard_threshold < 2:
            raise ValueError(
                f"shard_threshold must be >= 2, got {shard_threshold}"
            )
        self.num_workers = num_workers
        self.worker_timeout = worker_timeout
        self.shard_threshold = shard_threshold
        self._start_method = start_method
        self._pool: Optional[WorkerPool] = None
        self.degraded = False
        self.degraded_reason: Optional[str] = None
        self._last: Dict[str, Any] = {}

    @property
    def active(self) -> bool:
        """Will the next batch actually use worker processes?"""
        return self.num_workers >= 2 and not self.degraded

    @property
    def pool(self) -> Optional[WorkerPool]:
        return self._pool

    def info(self) -> Dict[str, Any]:
        """Driver state plus statistics of the last sampled batch."""
        payload: Dict[str, Any] = {
            "num_workers": self.num_workers,
            "active": self.active,
            "degraded": self.degraded,
            "shard_threshold": self.shard_threshold,
        }
        if self.degraded_reason is not None:
            payload["degraded_reason"] = self.degraded_reason
        payload.update(self._last)
        return payload

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut the pool down; the next pooled batch respawns it."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    def reset(self) -> None:
        """Forget a degrade; the next batch tries the pool again."""
        self.degraded = False
        self.degraded_reason = None

    def __enter__(self) -> "ParallelGibbsDriver":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _degrade(self, error: BaseException) -> None:
        self.degraded = True
        self.degraded_reason = str(error) or type(error).__name__
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close(force=True)
        warnings.warn(
            "inference worker pool lost "
            f"({self.degraded_reason}); continuing with serial sampling",
            RuntimeWarning,
            stacklevel=4,
        )

    # -- sampling ------------------------------------------------------------

    def sample_components(
        self,
        snapshots: Sequence[ComponentSnapshot],
        num_sweeps: int,
        seed: int,
    ) -> Dict[int, float]:
        """Marginals over a batch of component snapshots.

        Bit-identical to :func:`repro.delta.inference.sample_components`
        without a driver, for any ``num_workers``.
        """
        started = time.perf_counter()  # lint: disable=RC003 (timing metadata, not sampling)
        if not self.active or not snapshots:
            marginals, colors = _sample_batch(snapshots, num_sweeps, seed)
            self._record(started, snapshots, sharded=0, colors=colors, pooled=False)
            return marginals
        try:
            return self._sample_pooled(snapshots, num_sweeps, seed, started)
        except WorkerCrashError as error:
            self._degrade(error)
            started = time.perf_counter()  # lint: disable=RC003 (timing metadata, not sampling)
            marginals, colors = _sample_batch(snapshots, num_sweeps, seed)
            self._record(started, snapshots, sharded=0, colors=colors, pooled=False)
            return marginals

    def _sample_pooled(
        self,
        snapshots: Sequence[ComponentSnapshot],
        num_sweeps: int,
        seed: int,
        started: float,
    ) -> Dict[int, float]:
        from ..delta.inference import component_seed

        pool = self._ensure_pool()
        plan = plan_shards(snapshots, pool.num_workers, self.shard_threshold)
        marginals: Dict[int, float] = {}
        colors = 0
        if plan.batched_components:
            payloads = [
                {
                    "components": [snapshots[index] for index in batch],
                    "num_sweeps": num_sweeps,
                    "seed": seed,
                }
                for batch in plan.batches
            ]
            for reply in pool.run_tasks(_BATCH_TASK, payloads).values():
                marginals.update(reply["marginals"])
                colors = max(colors, reply["colors"])
        if plan.sharded:
            participants = list(range(pool.num_workers))
            jobs: List[List[Dict[str, Any]]] = [[] for _ in participants]
            for index in plan.sharded:
                member_ids, rows = snapshots[index]
                members = sorted(member_ids)
                ranges = split_ranges(len(members), pool.num_workers)
                epoch_base = pool.next_epoch()
                for me in participants:
                    jobs[me].append(
                        {
                            "members": members,
                            "rows": rows,
                            "num_sweeps": num_sweeps,
                            "seed": component_seed(seed, members[0]),
                            "ranges": ranges,
                            "participants": participants,
                            "me": me,
                            "epoch_base": epoch_base,
                        }
                    )
            payloads = [{"jobs": worker_jobs} for worker_jobs in jobs]
            for reply in pool.run_tasks(_SHARD_TASK, payloads).values():
                marginals.update(reply["marginals"])
                colors = max(colors, reply["colors"])
        self._record(
            started, snapshots, sharded=len(plan.sharded), colors=colors, pooled=True
        )
        return marginals

    def _ensure_pool(self) -> WorkerPool:
        if self._pool is None:
            self._pool = WorkerPool(
                nseg=self.num_workers,
                num_workers=self.num_workers,
                reply_timeout=self.worker_timeout,
                start_method=self._start_method,
            )
        return self._pool

    def _record(
        self,
        started: float,
        snapshots: Sequence[ComponentSnapshot],
        sharded: int,
        colors: int,
        pooled: bool,
    ) -> None:
        self._last = {
            "pooled": pooled,
            "components": len(snapshots),
            "sharded_components": sharded,
            "colors": colors,
            "wall_seconds": time.perf_counter() - started,  # lint: disable=RC003 (timing metadata, not sampling)
        }
