"""Marginal inference engines over ground factor graphs.

The grounding phase (``repro.core``) emits a factor table TΦ; this
package plays the role GraphLab's parallel Gibbs sampler plays in the
paper: computing P(fact is true) for every ground atom.
"""

from .bp import BPResult, bp_marginals
from .exact import exact_map, exact_marginals
from .factor_graph import ClauseFactor, FactorGraph
from .gibbs import (
    ChainDiagnostics,
    GibbsResult,
    GibbsSampler,
    gibbs_marginals,
    gibbs_with_diagnostics,
)
from .map_inference import MAPResult, annealed_map, icm_map

__all__ = [
    "BPResult",
    "ChainDiagnostics",
    "ClauseFactor",
    "FactorGraph",
    "GibbsResult",
    "MAPResult",
    "GibbsSampler",
    "bp_marginals",
    "exact_map",
    "exact_marginals",
    "annealed_map",
    "gibbs_marginals",
    "gibbs_with_diagnostics",
    "icm_map",
]
