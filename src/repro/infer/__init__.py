"""Marginal inference engines over ground factor graphs.

The grounding phase (``repro.core``) emits a factor table TΦ; this
package plays the role GraphLab's parallel Gibbs sampler plays in the
paper: computing P(fact is true) for every ground atom.
"""

from .bp import BPResult, bp_marginals
from .exact import exact_map, exact_marginals
from .factor_graph import ClauseFactor, FactorGraph
from .gibbs import (
    ChainDiagnostics,
    GibbsResult,
    GibbsSampler,
    gibbs_marginals,
    gibbs_with_diagnostics,
)
from .map_inference import MAPResult, annealed_map, icm_map
from .registry import (
    InferenceEngine,
    build_engine,
    register_engine,
    registered_engines,
)

# NOTE: .parallel is intentionally not imported here — it pulls in the
# worker-pool machinery; engines load it lazily when num_workers >= 2.

__all__ = [
    "BPResult",
    "ChainDiagnostics",
    "ClauseFactor",
    "FactorGraph",
    "GibbsResult",
    "InferenceEngine",
    "MAPResult",
    "GibbsSampler",
    "bp_marginals",
    "build_engine",
    "exact_map",
    "exact_marginals",
    "annealed_map",
    "gibbs_marginals",
    "gibbs_with_diagnostics",
    "icm_map",
    "register_engine",
    "registered_engines",
]
