"""Chromatic (parallel) Gibbs sampling for marginal inference.

The paper runs the parallel Gibbs sampler of Gonzalez et al. (AISTATS'11)
on GraphLab.  That algorithm colours the Markov blanket graph and updates
all variables of one colour simultaneously — valid because same-coloured
variables are conditionally independent.  We reproduce it faithfully:
a greedy colouring (networkx) partitions variables into colour classes,
and each sweep updates the classes in sequence.

Two sweep kernels share the colour structure:

- :meth:`GibbsSampler.run` — the original sequential-stream kernel: one
  ``random.Random(seed)`` stream consumed in iteration order.  Kept for
  backwards compatibility (``gibbs_marginals``, chain diagnostics).
- :meth:`GibbsSampler.run_stream` — the *shardable* kernel behind
  :mod:`repro.infer.parallel`: every draw comes from a counter-based
  stream keyed by ``(seed, sweep, color, variable)``, so the draw for a
  variable is a pure function of its key, independent of which process
  samples it or in what order.  Splitting a colour class across worker
  processes (states synchronized at a per-colour barrier) therefore
  yields marginals bit-identical to a serial run.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import networkx as nx

from .factor_graph import FactorGraph

_MASK = (1 << 64) - 1
#: pseudo-sweep index reserved for drawing the initial state
_INIT_SWEEP = -1


def _mix64(z: int) -> int:
    """splitmix64 finalizer: avalanche a 64-bit value."""
    z = (z + 0x9E3779B97F4A7C15) & _MASK
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
    return z ^ (z >> 31)


def stream_key(seed: int, sweep: int, color: int) -> int:
    """The per-(seed, sweep, color) stream for the shardable kernel."""
    z = _mix64(seed & _MASK)
    z = _mix64(z ^ (((sweep + 2) * 0xD1B54A32D192ED03) & _MASK))
    return _mix64(z ^ (((color + 1) * 0x8CB92BA72F3D8DD7) & _MASK))


def stream_uniform(key: int, var: int) -> float:
    """Uniform in [0, 1) for one variable of one stream.

    A pure function of ``(key, var)`` — the property that makes the
    chromatic sweep shardable: any process sampling ``var`` at a given
    (seed, sweep, color) draws exactly this number.
    """
    z = _mix64(key ^ (((var + 1) * 0x9E3779B97F4A7C15) & _MASK))
    return (z >> 11) * (2.0 ** -53)


def stream_state(seed: int, num_variables: int) -> List[int]:
    """Deterministic initial assignment for the stream kernel."""
    key = stream_key(seed, _INIT_SWEEP, 0)
    return [
        1 if stream_uniform(key, var) < 0.5 else 0
        for var in range(num_variables)
    ]


#: per-colour boundary-state exchange: ``(sweep, color, my_updates) ->
#: other shards' updates`` (see :mod:`repro.infer.parallel`)
ExchangeFn = Callable[[int, int, Dict[int, int]], Dict[int, int]]


@dataclass
class GibbsResult:
    """Marginals plus diagnostics from a Gibbs run."""

    marginals: Dict[int, float]
    num_sweeps: int
    num_colors: int
    #: modelled parallel sweep cost: sum over colours of max class share
    parallel_depth: int

    def probability(self, external_id: int) -> float:
        return self.marginals[external_id]


class GibbsSampler:
    """Single-site Gibbs with chromatic scheduling."""

    def __init__(self, graph: FactorGraph, seed: int = 0) -> None:
        self.graph = graph
        self.seed = seed
        self.rng = random.Random(seed)
        self._touching = graph.factors_touching()
        self._colors = self._color()

    def _color(self) -> List[List[int]]:
        """Colour classes of the Markov blanket graph."""
        markov = nx.Graph()
        markov.add_nodes_from(range(self.graph.num_variables))
        for factor in self.graph.factors:
            variables = list(set(factor.variables))
            for i, u in enumerate(variables):
                for v in variables[i + 1 :]:
                    markov.add_edge(u, v)
        coloring = nx.greedy_color(markov, strategy="largest_first")
        classes: Dict[int, List[int]] = {}
        for var, color in coloring.items():
            classes.setdefault(color, []).append(var)
        return [sorted(classes[c]) for c in sorted(classes)]

    @property
    def num_colors(self) -> int:
        return len(self._colors)

    # -- sampling -------------------------------------------------------------

    def _conditional_true_probability(
        self, var: int, state: List[int]
    ) -> float:
        """P(X_var = 1 | Markov blanket) from the touching factors."""
        delta = 0.0  # log potential(x=1) - log potential(x=0)
        factors = self.graph.factors
        for factor_id in self._touching[var]:
            factor = factors[factor_id]
            state[var] = 1
            delta += factor.log_potential(state)
            state[var] = 0
            delta -= factor.log_potential(state)
        # logistic of the energy difference
        if delta > 35:
            return 1.0
        if delta < -35:
            return 0.0
        return 1.0 / (1.0 + math.exp(-delta))

    def run(
        self,
        num_sweeps: int = 500,
        burn_in: Optional[int] = None,
        initial_state: Optional[Sequence[int]] = None,
    ) -> GibbsResult:
        """Run ``num_sweeps`` full sweeps; average marginals after burn-in.

        ``burn_in`` defaults to one quarter of the sweeps.
        """
        n = self.graph.num_variables
        if burn_in is None:
            burn_in = max(1, num_sweeps // 4) if num_sweeps > 1 else 0
        if initial_state is not None:
            state = list(initial_state)
        else:
            state = [self.rng.randint(0, 1) for _ in range(n)]
        true_counts = [0] * n
        kept = 0
        rng_random = self.rng.random
        for sweep in range(num_sweeps):
            for color_class in self._colors:
                # all variables of one colour are conditionally
                # independent: this loop is the "parallel" update
                for var in color_class:
                    p_true = self._conditional_true_probability(var, state)
                    state[var] = 1 if rng_random() < p_true else 0
            if sweep >= burn_in:
                kept += 1
                for var in range(n):
                    true_counts[var] += state[var]
        if kept == 0:
            kept = 1  # degenerate configuration: report last state
            true_counts = list(state)
        marginals = {
            self.graph.external_id(var): true_counts[var] / kept
            for var in range(n)
        }
        depth = sum(
            max(1, len(color_class)) for color_class in self._colors
        )
        return GibbsResult(
            marginals=marginals,
            num_sweeps=num_sweeps,
            num_colors=self.num_colors,
            parallel_depth=depth,
        )

    def run_stream(
        self,
        num_sweeps: int = 500,
        burn_in: Optional[int] = None,
        owned: Optional[Sequence[int]] = None,
        exchange: Optional[ExchangeFn] = None,
    ) -> GibbsResult:
        """Shardable chromatic sweep with counter-based RNG.

        Each draw is a pure function of ``(seed, sweep, color, var)``
        (see :func:`stream_uniform`), so partitioning the variables over
        ``owned`` sets across processes — with boundary states merged
        back through ``exchange`` at the end of every colour — produces
        marginals bit-identical to a single-process run over all
        variables.

        ``owned`` restricts which (dense) variable indices this caller
        samples and reports; ``None`` means all of them.  ``exchange``
        is called once per (sweep, colour) — even when this shard owns
        no variable of that colour — with the updates just made, and
        must return the other shards' updates for the same colour.
        """
        n = self.graph.num_variables
        if burn_in is None:
            burn_in = max(1, num_sweeps // 4) if num_sweeps > 1 else 0
        owned_set = set(range(n)) if owned is None else set(owned)
        owned_sorted = sorted(owned_set)
        # per-colour slices of the owned set, precomputed once
        owned_by_color = [
            [var for var in color_class if var in owned_set]
            for color_class in self._colors
        ]
        state = stream_state(self.seed, n)
        true_counts = {var: 0 for var in owned_sorted}
        kept = 0
        for sweep in range(num_sweeps):
            for color, color_class in enumerate(self._colors):
                key = stream_key(self.seed, sweep, color)
                updates: Dict[int, int] = {}
                # same-colour variables are conditionally independent,
                # so in-place updates cannot leak into each other's
                # conditionals within this loop
                for var in owned_by_color[color]:
                    p_true = self._conditional_true_probability(var, state)
                    value = 1 if stream_uniform(key, var) < p_true else 0
                    state[var] = value
                    updates[var] = value
                if exchange is not None:
                    for var, value in exchange(sweep, color, updates).items():
                        state[var] = value
            if sweep >= burn_in:
                kept += 1
                for var in owned_sorted:
                    true_counts[var] += state[var]
        if kept == 0:
            kept = 1  # degenerate configuration: report last state
            true_counts = {var: state[var] for var in owned_sorted}
        marginals = {
            self.graph.external_id(var): true_counts[var] / kept
            for var in owned_sorted
        }
        depth = sum(
            max(1, len(color_class)) for color_class in self._colors
        )
        return GibbsResult(
            marginals=marginals,
            num_sweeps=num_sweeps,
            num_colors=self.num_colors,
            parallel_depth=depth,
        )


def gibbs_marginals(
    graph: FactorGraph, num_sweeps: int = 500, seed: int = 0
) -> Dict[int, float]:
    """Convenience wrapper: marginals keyed by external variable id."""
    if graph.num_variables == 0:
        return {}
    return GibbsSampler(graph, seed=seed).run(num_sweeps=num_sweeps).marginals


@dataclass
class ChainDiagnostics:
    """Pooled marginals plus Gelman-Rubin convergence diagnostics."""

    marginals: Dict[int, float]
    r_hat: Dict[int, float]
    num_chains: int
    num_sweeps: int

    @property
    def max_r_hat(self) -> float:
        return max(self.r_hat.values(), default=1.0)

    def converged(self, threshold: float = 1.1) -> bool:
        """The usual heuristic: all R-hat below ~1.1."""
        return self.max_r_hat < threshold


def gibbs_with_diagnostics(
    graph: FactorGraph,
    num_chains: int = 4,
    num_sweeps: int = 400,
    seed: int = 0,
) -> ChainDiagnostics:
    """Run several independent chains and report pooled marginals with
    the Gelman-Rubin statistic per variable.

    For binary samples the within-chain variance is a function of the
    chain mean (m(1-m)·n/(n-1)), so per-chain marginals suffice:

        W  = mean_c  m_c (1 - m_c) n/(n-1)
        B  = n · Var_c(m_c)
        R̂ = sqrt( ((n-1)/n · W + B/n) / W )
    """
    if graph.num_variables == 0:
        return ChainDiagnostics({}, {}, num_chains, num_sweeps)
    chains = [
        GibbsSampler(graph, seed=seed + 9973 * chain).run(num_sweeps=num_sweeps)
        for chain in range(num_chains)
    ]
    burn_in = max(1, num_sweeps // 4) if num_sweeps > 1 else 0
    kept = max(1, num_sweeps - burn_in)

    marginals: Dict[int, float] = {}
    r_hat: Dict[int, float] = {}
    for external in graph.external_ids():
        means = [chain.marginals[external] for chain in chains]
        pooled = sum(means) / len(means)
        marginals[external] = pooled
        if kept < 2 or num_chains < 2:
            r_hat[external] = 1.0
            continue
        within = sum(m * (1 - m) * kept / (kept - 1) for m in means) / len(means)
        grand = pooled
        between = kept * sum((m - grand) ** 2 for m in means) / (len(means) - 1)
        if within <= 0:
            r_hat[external] = 1.0 if between == 0 else math.inf
            continue
        var_plus = (kept - 1) / kept * within + between / kept
        r_hat[external] = math.sqrt(var_plus / within)
    return ChainDiagnostics(marginals, r_hat, num_chains, num_sweeps)
