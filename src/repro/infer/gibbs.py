"""Chromatic (parallel) Gibbs sampling for marginal inference.

The paper runs the parallel Gibbs sampler of Gonzalez et al. (AISTATS'11)
on GraphLab.  That algorithm colours the Markov blanket graph and updates
all variables of one colour simultaneously — valid because same-coloured
variables are conditionally independent.  We reproduce it faithfully:
a greedy colouring (networkx) partitions variables into colour classes,
and each sweep updates the classes in sequence.  On a single machine the
"parallel" update is a loop, but the sampling semantics (and results)
are identical, and the colour structure is exposed so the simulated
speedup can be reported.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import networkx as nx

from .factor_graph import FactorGraph


@dataclass
class GibbsResult:
    """Marginals plus diagnostics from a Gibbs run."""

    marginals: Dict[int, float]
    num_sweeps: int
    num_colors: int
    #: modelled parallel sweep cost: sum over colours of max class share
    parallel_depth: int

    def probability(self, external_id: int) -> float:
        return self.marginals[external_id]


class GibbsSampler:
    """Single-site Gibbs with chromatic scheduling."""

    def __init__(self, graph: FactorGraph, seed: int = 0) -> None:
        self.graph = graph
        self.rng = random.Random(seed)
        self._touching = graph.factors_touching()
        self._colors = self._color()

    def _color(self) -> List[List[int]]:
        """Colour classes of the Markov blanket graph."""
        markov = nx.Graph()
        markov.add_nodes_from(range(self.graph.num_variables))
        for factor in self.graph.factors:
            variables = list(set(factor.variables))
            for i, u in enumerate(variables):
                for v in variables[i + 1 :]:
                    markov.add_edge(u, v)
        coloring = nx.greedy_color(markov, strategy="largest_first")
        classes: Dict[int, List[int]] = {}
        for var, color in coloring.items():
            classes.setdefault(color, []).append(var)
        return [sorted(classes[c]) for c in sorted(classes)]

    @property
    def num_colors(self) -> int:
        return len(self._colors)

    # -- sampling -------------------------------------------------------------

    def _conditional_true_probability(
        self, var: int, state: List[int]
    ) -> float:
        """P(X_var = 1 | Markov blanket) from the touching factors."""
        delta = 0.0  # log potential(x=1) - log potential(x=0)
        factors = self.graph.factors
        for factor_id in self._touching[var]:
            factor = factors[factor_id]
            state[var] = 1
            delta += factor.log_potential(state)
            state[var] = 0
            delta -= factor.log_potential(state)
        # logistic of the energy difference
        if delta > 35:
            return 1.0
        if delta < -35:
            return 0.0
        return 1.0 / (1.0 + math.exp(-delta))

    def run(
        self,
        num_sweeps: int = 500,
        burn_in: Optional[int] = None,
        initial_state: Optional[Sequence[int]] = None,
    ) -> GibbsResult:
        """Run ``num_sweeps`` full sweeps; average marginals after burn-in.

        ``burn_in`` defaults to one quarter of the sweeps.
        """
        n = self.graph.num_variables
        if burn_in is None:
            burn_in = max(1, num_sweeps // 4) if num_sweeps > 1 else 0
        if initial_state is not None:
            state = list(initial_state)
        else:
            state = [self.rng.randint(0, 1) for _ in range(n)]
        true_counts = [0] * n
        kept = 0
        rng_random = self.rng.random
        for sweep in range(num_sweeps):
            for color_class in self._colors:
                # all variables of one colour are conditionally
                # independent: this loop is the "parallel" update
                for var in color_class:
                    p_true = self._conditional_true_probability(var, state)
                    state[var] = 1 if rng_random() < p_true else 0
            if sweep >= burn_in:
                kept += 1
                for var in range(n):
                    true_counts[var] += state[var]
        if kept == 0:
            kept = 1  # degenerate configuration: report last state
            true_counts = list(state)
        marginals = {
            self.graph.external_id(var): true_counts[var] / kept
            for var in range(n)
        }
        depth = sum(
            max(1, len(color_class)) for color_class in self._colors
        )
        return GibbsResult(
            marginals=marginals,
            num_sweeps=num_sweeps,
            num_colors=self.num_colors,
            parallel_depth=depth,
        )


def gibbs_marginals(
    graph: FactorGraph, num_sweeps: int = 500, seed: int = 0
) -> Dict[int, float]:
    """Convenience wrapper: marginals keyed by external variable id."""
    if graph.num_variables == 0:
        return {}
    return GibbsSampler(graph, seed=seed).run(num_sweeps=num_sweeps).marginals


@dataclass
class ChainDiagnostics:
    """Pooled marginals plus Gelman-Rubin convergence diagnostics."""

    marginals: Dict[int, float]
    r_hat: Dict[int, float]
    num_chains: int
    num_sweeps: int

    @property
    def max_r_hat(self) -> float:
        return max(self.r_hat.values(), default=1.0)

    def converged(self, threshold: float = 1.1) -> bool:
        """The usual heuristic: all R-hat below ~1.1."""
        return self.max_r_hat < threshold


def gibbs_with_diagnostics(
    graph: FactorGraph,
    num_chains: int = 4,
    num_sweeps: int = 400,
    seed: int = 0,
) -> ChainDiagnostics:
    """Run several independent chains and report pooled marginals with
    the Gelman-Rubin statistic per variable.

    For binary samples the within-chain variance is a function of the
    chain mean (m(1-m)·n/(n-1)), so per-chain marginals suffice:

        W  = mean_c  m_c (1 - m_c) n/(n-1)
        B  = n · Var_c(m_c)
        R̂ = sqrt( ((n-1)/n · W + B/n) / W )
    """
    if graph.num_variables == 0:
        return ChainDiagnostics({}, {}, num_chains, num_sweeps)
    chains = [
        GibbsSampler(graph, seed=seed + 9973 * chain).run(num_sweeps=num_sweeps)
        for chain in range(num_chains)
    ]
    burn_in = max(1, num_sweeps // 4) if num_sweeps > 1 else 0
    kept = max(1, num_sweeps - burn_in)

    marginals: Dict[int, float] = {}
    r_hat: Dict[int, float] = {}
    for external in graph.external_ids():
        means = [chain.marginals[external] for chain in chains]
        pooled = sum(means) / len(means)
        marginals[external] = pooled
        if kept < 2 or num_chains < 2:
            r_hat[external] = 1.0
            continue
        within = sum(m * (1 - m) * kept / (kept - 1) for m in means) / len(means)
        grand = pooled
        between = kept * sum((m - grand) ** 2 for m in means) / (len(means) - 1)
        if within <= 0:
            r_hat[external] = 1.0 if between == 0 else math.inf
            continue
        var_plus = (kept - 1) / kept * within + between / kept
        r_hat[external] = math.sqrt(var_plus / within)
    return ChainDiagnostics(marginals, r_hat, num_chains, num_sweeps)
