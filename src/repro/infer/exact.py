"""Exact marginal inference by enumeration (validation oracle).

Only feasible for small ground graphs (≤ ~20 variables); used by tests
to validate the Gibbs sampler and belief propagation.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List

from .factor_graph import FactorGraph

MAX_EXACT_VARIABLES = 22


def exact_marginals(graph: FactorGraph) -> Dict[int, float]:
    """P(X_i = 1) for every variable, keyed by external id."""
    n = graph.num_variables
    if n > MAX_EXACT_VARIABLES:
        raise ValueError(
            f"exact inference limited to {MAX_EXACT_VARIABLES} variables, "
            f"graph has {n}"
        )
    if n == 0:
        return {}
    partition = 0.0
    true_mass = [0.0] * n
    for assignment in itertools.product((0, 1), repeat=n):
        weight = math.exp(graph.log_score(assignment))
        partition += weight
        for var, value in enumerate(assignment):
            if value:
                true_mass[var] += weight
    return {
        graph.external_id(var): true_mass[var] / partition for var in range(n)
    }


def exact_map(graph: FactorGraph) -> Dict[int, int]:
    """The most probable world (MAP assignment), keyed by external id.

    ProbKB itself uses marginal inference (Section 2.2) but the paper
    notes MAP as the other inference mode; exposing it makes the oracle
    reusable for tests of hard-constraint behaviour.
    """
    n = graph.num_variables
    if n > MAX_EXACT_VARIABLES:
        raise ValueError(
            f"exact inference limited to {MAX_EXACT_VARIABLES} variables, "
            f"graph has {n}"
        )
    best_score = -math.inf
    best: List[int] = [0] * n
    for assignment in itertools.product((0, 1), repeat=n):
        score = graph.log_score(assignment)
        if score > best_score:
            best_score = score
            best = list(assignment)
    return {graph.external_id(var): best[var] for var in range(n)}
