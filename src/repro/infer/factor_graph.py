"""Ground factor graphs for MLN marginal inference.

ProbKB's grounding produces the factor table ``TΦ`` whose rows
``(I1, I2, I3, w)`` each denote a weighted ground clause
``I1 ← I2 ∧ I3`` (``I2``/``I3`` may be NULL for singleton or length-2
factors).  Per Section 2.2, the factor's value is ``e^w`` when the ground
clause is *satisfied* and ``1`` otherwise, so the joint distribution is
``P(x) ∝ exp(Σ_i w_i n_i(x))``.

This module turns those rows into an explicit factor graph consumable by
the Gibbs sampler, belief propagation, and the exact enumerator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class ClauseFactor:
    """A weighted ground Horn clause ``head ← body[0] ∧ body[1] ∧ ...``.

    ``head`` and ``body`` are *variable indexes* into the graph.  A
    singleton factor (an uncertain extracted fact) is represented with an
    empty body: the clause reduces to the atom itself, so the factor is
    ``e^w`` when the variable is true.
    """

    head: int
    body: Tuple[int, ...]
    weight: float

    @property
    def variables(self) -> Tuple[int, ...]:
        return (self.head,) + self.body

    def satisfied(self, assignment: Sequence[int]) -> bool:
        """Is the ground clause true under the 0/1 ``assignment``?"""
        if not self.body:
            return bool(assignment[self.head])
        if all(assignment[var] for var in self.body):
            return bool(assignment[self.head])
        return True  # body false -> implication vacuously true

    def log_potential(self, assignment: Sequence[int]) -> float:
        return self.weight if self.satisfied(assignment) else 0.0


class FactorGraph:
    """A ground factor graph over binary variables.

    Variables are registered with external ids (ProbKB fact ids); all
    computation uses dense 0-based indexes.
    """

    def __init__(self) -> None:
        self._index_of: Dict[int, int] = {}
        self._id_of: List[int] = []
        self.factors: List[ClauseFactor] = []
        self._adjacency: Optional[List[List[int]]] = None

    # -- construction --------------------------------------------------------

    def variable(self, external_id: int) -> int:
        """Register (or look up) a variable; returns its dense index."""
        index = self._index_of.get(external_id)
        if index is None:
            index = len(self._id_of)
            self._index_of[external_id] = index
            self._id_of.append(external_id)
            self._adjacency = None
        return index

    def add_clause(
        self,
        head_id: int,
        body_ids: Sequence[int],
        weight: float,
    ) -> ClauseFactor:
        if not math.isfinite(weight):
            # Hard rules (weight ±∞) belong to the constraint set Ω and are
            # enforced by quality control, never grounded into TΦ.
            raise ValueError(
                f"factor weights must be finite, got {weight!r}; "
                "hard rules are handled as semantic constraints"
            )
        factor = ClauseFactor(
            head=self.variable(head_id),
            body=tuple(self.variable(b) for b in body_ids),
            weight=float(weight),
        )
        self.factors.append(factor)
        self._adjacency = None
        return factor

    @classmethod
    def from_factor_rows(
        cls, rows: Iterable[Tuple[Optional[int], Optional[int], Optional[int], float]]
    ) -> "FactorGraph":
        """Build a graph from TΦ rows ``(I1, I2, I3, w)``.

        ``I2``/``I3`` may be ``None``; ``w`` must not be (facts with
        undetermined weights do not generate factors).
        """
        graph = cls()
        for head, body2, body3, weight in rows:
            if head is None or weight is None:
                raise ValueError(f"malformed factor row {(head, body2, body3, weight)}")
            body = [b for b in (body2, body3) if b is not None]
            graph.add_clause(head, body, weight)
        return graph

    # -- accessors -------------------------------------------------------------

    @property
    def num_variables(self) -> int:
        return len(self._id_of)

    @property
    def num_factors(self) -> int:
        return len(self.factors)

    def external_id(self, index: int) -> int:
        return self._id_of[index]

    def external_ids(self) -> List[int]:
        return list(self._id_of)

    def factors_touching(self) -> List[List[int]]:
        """For each variable index, the indexes of factors mentioning it."""
        if self._adjacency is None:
            adjacency: List[List[int]] = [[] for _ in range(self.num_variables)]
            for factor_id, factor in enumerate(self.factors):
                for var in set(factor.variables):
                    adjacency[var].append(factor_id)
            self._adjacency = adjacency
        return self._adjacency

    def neighbors(self) -> List[List[int]]:
        """For each variable, the other variables sharing a factor."""
        touching = self.factors_touching()
        result: List[List[int]] = []
        for var, factor_ids in enumerate(touching):
            seen = set()
            for factor_id in factor_ids:
                seen.update(self.factors[factor_id].variables)
            seen.discard(var)
            result.append(sorted(seen))
        return result

    # -- scoring -----------------------------------------------------------------

    def log_score(self, assignment: Sequence[int]) -> float:
        """Unnormalized log probability ``Σ_i W_i n_i(x)``."""
        return sum(factor.log_potential(assignment) for factor in self.factors)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FactorGraph({self.num_variables} variables, "
            f"{self.num_factors} factors)"
        )
