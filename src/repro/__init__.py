"""ProbKB — knowledge expansion over probabilistic knowledge bases.

A full reproduction of Chen & Wang, SIGMOD 2014: a relational model for
probabilistic KBs, a SQL-based batch grounding algorithm, an MPP
execution backend, quality control, and marginal inference.

Quickstart::

    from repro import ExpansionSession, Fact, HornClause, Atom, KnowledgeBase
    from repro.api import BackendConfig, MPPConfig

    kb = KnowledgeBase(classes=..., relations=..., facts=..., rules=...)
    with ExpansionSession(kb, backend=BackendConfig(kind="mpp")) as session:
        session.ground()
        marginals = session.infer()

:mod:`repro.api` holds the full session API (config objects, typed
results); :class:`ProbKB` remains the lower-level facade.
"""

from .api import (
    BackendConfig,
    ExpansionSession,
    GroundingConfig,
    InferenceConfig,
    MPPConfig,
)
from .core import (
    Atom,
    ConstraintResult,
    Fact,
    FunctionalConstraint,
    GroundingResult,
    HornClause,
    InferenceResult,
    KnowledgeBase,
    MPPBackend,
    ProbKB,
    Relation,
    SingleNodeBackend,
    TuffyT,
    TYPE_I,
    TYPE_II,
)

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "BackendConfig",
    "ConstraintResult",
    "ExpansionSession",
    "Fact",
    "FunctionalConstraint",
    "GroundingConfig",
    "GroundingResult",
    "HornClause",
    "InferenceConfig",
    "InferenceResult",
    "KnowledgeBase",
    "MPPBackend",
    "MPPConfig",
    "ProbKB",
    "Relation",
    "SingleNodeBackend",
    "TYPE_I",
    "TYPE_II",
    "TuffyT",
    "__version__",
]
