"""ProbKB — knowledge expansion over probabilistic knowledge bases.

A full reproduction of Chen & Wang, SIGMOD 2014: a relational model for
probabilistic KBs, a SQL-based batch grounding algorithm, an MPP
execution backend, quality control, and marginal inference.

Quickstart::

    from repro import Fact, HornClause, Atom, KnowledgeBase, ProbKB

    kb = KnowledgeBase(classes=..., relations=..., facts=..., rules=...)
    system = ProbKB(kb, backend="mpp")
    system.ground()
    marginals = system.infer()
"""

from .core import (
    Atom,
    Fact,
    FunctionalConstraint,
    HornClause,
    KnowledgeBase,
    MPPBackend,
    ProbKB,
    Relation,
    SingleNodeBackend,
    TuffyT,
    TYPE_I,
    TYPE_II,
)

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "Fact",
    "FunctionalConstraint",
    "HornClause",
    "KnowledgeBase",
    "MPPBackend",
    "ProbKB",
    "Relation",
    "SingleNodeBackend",
    "TYPE_I",
    "TYPE_II",
    "TuffyT",
    "__version__",
]
