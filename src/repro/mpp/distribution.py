"""Distribution policies for the shared-nothing MPP simulator.

A hash-distributed table assigns each row to a segment by a stable hash
of its distribution-key columns (Greenplum's ``DISTRIBUTED BY``).  A
replicated table keeps a full copy on every segment.  Randomly
distributed tables round-robin rows (``DISTRIBUTED RANDOMLY``).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..relational.types import Row, Value


def stable_hash(values: Sequence[Value]) -> int:
    """A process-stable hash of a key tuple (crc32 over a canonical form).

    Python's builtin ``hash`` is salted per process for strings, which
    would make segment assignment non-deterministic across runs; crc32
    keeps the simulator reproducible.
    """
    payload = "\x1f".join(
        f"{type(v).__name__}:{v!r}" for v in values
    ).encode("utf-8")
    return zlib.crc32(payload)


class DistributionPolicy:
    """Base class; concrete policies say where each row lives."""

    def segment_of(self, row: Row, key_positions: Sequence[int], nseg: int) -> int:
        raise NotImplementedError

    @property
    def key_columns(self) -> Optional[Tuple[str, ...]]:
        """Hash-key column names, or None for non-hash policies."""
        return None

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class HashDistribution(DistributionPolicy):
    """``DISTRIBUTED BY (columns...)``."""

    columns: Tuple[str, ...]

    def __init__(self, columns: Sequence[str]) -> None:
        object.__setattr__(self, "columns", tuple(columns))

    def segment_of(self, row: Row, key_positions: Sequence[int], nseg: int) -> int:
        key = tuple(row[pos] for pos in key_positions)
        return stable_hash(key) % nseg

    @property
    def key_columns(self) -> Tuple[str, ...]:
        return self.columns

    def describe(self) -> str:
        return f"DISTRIBUTED BY ({', '.join(self.columns)})"


class RandomDistribution(DistributionPolicy):
    """``DISTRIBUTED RANDOMLY`` — round-robin for determinism."""

    def __init__(self) -> None:
        self._next = 0

    def segment_of(self, row: Row, key_positions: Sequence[int], nseg: int) -> int:
        seg = self._next % nseg
        self._next += 1
        return seg

    def describe(self) -> str:
        return "DISTRIBUTED RANDOMLY"


class ReplicatedDistribution(DistributionPolicy):
    """Every segment holds a full copy (Greenplum replicated tables)."""

    def segment_of(self, row: Row, key_positions: Sequence[int], nseg: int) -> int:
        raise AssertionError("replicated tables are copied, not partitioned")

    def describe(self) -> str:
        return "DISTRIBUTED REPLICATED"


def partition_rows(
    rows: Sequence[Row],
    policy: DistributionPolicy,
    key_positions: Sequence[int],
    nseg: int,
) -> List[List[Row]]:
    """Split rows into per-segment lists according to a policy."""
    if isinstance(policy, ReplicatedDistribution):
        return [list(rows) for _ in range(nseg)]
    shards: List[List[Row]] = [[] for _ in range(nseg)]
    for row in rows:
        shards[policy.segment_of(row, key_positions, nseg)].append(row)
    return shards
