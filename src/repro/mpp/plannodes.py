"""Physical plan records for the MPP simulator.

The MPP executor plans adaptively (motion decisions are made from actual
intermediate sizes, standing in for Greenplum's statistics-driven
optimizer).  While executing, it records the physical plan it chose as a
tree of :class:`PhysicalNode` so benchmarks can print Figure-4-style
EXPLAIN ANALYZE output with per-operator timings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


@dataclass
class PhysicalNode:
    """One operator of an executed MPP plan."""

    kind: str  # e.g. "Seq Scan", "Hash Join", "Redistribute Motion"
    detail: str = ""
    children: List["PhysicalNode"] = field(default_factory=list)
    #: modelled elapsed seconds for this operator alone (max over segments)
    seconds: float = 0.0
    #: output row count (total across segments)
    rows: int = 0
    #: distribution of this operator's output, declared by the planner
    #: that produced the node; None when the producer predates the
    #: verifier (e.g. plans deserialized from old snapshots)
    dist: Optional["DistDesc"] = None

    def describe(self) -> str:
        label = self.kind if not self.detail else f"{self.kind} {self.detail}"
        return f"{label}  (rows={self.rows}, {self.seconds * 1e3:.2f}ms)"

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.describe()]
        for child in self.children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def total_seconds(self) -> float:
        return self.seconds + sum(c.total_seconds() for c in self.children)

    def find_all(self, kind: str) -> List["PhysicalNode"]:
        found = [self] if self.kind == kind else []
        for child in self.children:
            found.extend(child.find_all(kind))
        return found

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "kind": self.kind,
            "rows": self.rows,
            "seconds": self.seconds,
        }
        if self.detail:
            payload["detail"] = self.detail
        if self.dist is not None:
            payload["dist"] = {
                "kind": self.dist.kind,
                "columns": (
                    list(self.dist.columns)
                    if self.dist.columns is not None
                    else None
                ),
            }
        if self.children:
            payload["children"] = [c.to_dict() for c in self.children]
        return payload

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "PhysicalNode":
        children: Sequence[Mapping[str, Any]] = payload.get("children", ())
        raw_dist = payload.get("dist")
        dist: Optional["DistDesc"] = None
        if raw_dist is not None:
            columns = raw_dist.get("columns")
            dist = DistDesc(
                kind=str(raw_dist["kind"]),
                columns=tuple(columns) if columns is not None else None,
            )
        return PhysicalNode(  # lint: disable=RC009 deserializer, not a planner
            kind=str(payload["kind"]),
            detail=str(payload.get("detail", "")),
            children=[PhysicalNode.from_dict(c) for c in children],
            seconds=float(payload.get("seconds", 0.0)),
            rows=int(payload.get("rows", 0)),
            dist=dist,
        )


@dataclass(frozen=True)
class DistDesc:
    """Describes how an intermediate result is spread across segments."""

    kind: str  # "hash" | "replicated" | "arbitrary"
    columns: Optional[Tuple[str, ...]] = None

    @staticmethod
    def hash_on(columns: Iterable[str]) -> "DistDesc":
        return DistDesc("hash", tuple(columns))

    @staticmethod
    def replicated() -> "DistDesc":
        return DistDesc("replicated")

    @staticmethod
    def arbitrary() -> "DistDesc":
        return DistDesc("arbitrary")

    def matches_keys(self, keys: Sequence[str]) -> Optional[Tuple[int, ...]]:
        """If this is a hash distribution on a permutation of ``keys``,
        return that permutation (indices into ``keys``); else None.

        Two results are collocated for a join when both are hashed on the
        join keys *in the same order*, so the permutation matters.
        """
        if self.kind != "hash" or self.columns is None:
            return None
        if len(self.columns) != len(keys) or set(self.columns) != set(keys):
            return None
        key_list = list(keys)
        return tuple(key_list.index(c) for c in self.columns)
