"""Shared-nothing MPP database simulator (the Greenplum stand-in)."""

from .cluster import MPPDatabase, MPPTable, Shards
from .distribution import (
    DistributionPolicy,
    HashDistribution,
    RandomDistribution,
    ReplicatedDistribution,
    partition_rows,
    stable_hash,
)
from .plannodes import DistDesc, PhysicalNode
from .workers import PooledOps, RemoteShards, WorkerCrashError, WorkerPool

__all__ = [
    "DistDesc",
    "DistributionPolicy",
    "HashDistribution",
    "MPPDatabase",
    "MPPTable",
    "PhysicalNode",
    "PooledOps",
    "RandomDistribution",
    "RemoteShards",
    "ReplicatedDistribution",
    "Shards",
    "WorkerCrashError",
    "WorkerPool",
    "partition_rows",
    "stable_hash",
]
