"""Shared-nothing MPP database simulator (the Greenplum stand-in)."""

from .cluster import MPPDatabase, MPPTable, Shards
from .distribution import (
    DistributionPolicy,
    HashDistribution,
    RandomDistribution,
    ReplicatedDistribution,
    partition_rows,
    stable_hash,
)
from .plannodes import DistDesc, PhysicalNode

__all__ = [
    "DistDesc",
    "DistributionPolicy",
    "HashDistribution",
    "MPPDatabase",
    "MPPTable",
    "PhysicalNode",
    "RandomDistribution",
    "ReplicatedDistribution",
    "Shards",
    "partition_rows",
    "stable_hash",
]
