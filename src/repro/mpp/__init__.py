"""Shared-nothing MPP database simulator (the Greenplum stand-in)."""

from .cluster import PLAN_MODES, MPPDatabase, MPPTable, Shards
from .distribution import (
    DistributionPolicy,
    HashDistribution,
    RandomDistribution,
    ReplicatedDistribution,
    partition_rows,
    stable_hash,
)
from .plannodes import DistDesc, PhysicalNode
from .static_planner import (
    JoinEstimate,
    MotionEstimate,
    StaticPlan,
    StaticPlanner,
    choose_fallback_motion,
    collect_mpp_statistics,
)
from .workers import PooledOps, RemoteShards, WorkerCrashError, WorkerPool

__all__ = [
    "DistDesc",
    "DistributionPolicy",
    "HashDistribution",
    "JoinEstimate",
    "MPPDatabase",
    "MPPTable",
    "MotionEstimate",
    "PLAN_MODES",
    "PhysicalNode",
    "PooledOps",
    "RandomDistribution",
    "RemoteShards",
    "ReplicatedDistribution",
    "Shards",
    "StaticPlan",
    "StaticPlanner",
    "WorkerCrashError",
    "WorkerPool",
    "choose_fallback_motion",
    "collect_mpp_statistics",
    "partition_rows",
    "stable_hash",
]
