"""Worker processes for the multi-process MPP executor.

Architecture (paper Figure 4: master + shared-nothing segment hosts)::

    master (planner, authoritative shards)        worker k (segments k, k+W, ...)
    --------------------------------------        --------------------------------
    PooledOps.<op> ──── command queue k ────────▶ run the operator on each
                                                  owned segment (repro.mpp.rowops)
                   ◀─── shared reply queue ────── ack {row counts, clock deltas}
    motions:            workers exchange pickled row batches directly over
                        per-worker inbox queues, tagged with a motion epoch

A :class:`WorkerPool` is spawned once per :class:`~repro.mpp.cluster.MPPDatabase`
and persists across statements.  Each worker owns ``seg % num_workers``
segments and keeps a private :class:`~repro.relational.table.Table` copy
of every segment shard it owns; the master mirrors all DML into the pool
(``load_shards`` / ``insert_shards`` / ``delete_keys`` / ``truncate``),
so worker state is always derivable from the master's — which is what
makes crash recovery a pure retry.

Determinism: workers run the exact same row loops as the serial
executor (:mod:`repro.mpp.rowops`), motions assemble incoming pieces in
ascending source-segment order (the serial executor's iteration order),
and all cost-clock charges for query operators happen worker-side and
are merged into the master's per-segment clocks from the acks.  A
pooled run therefore produces bit-identical tables, query results, and
modelled times to a serial run.

Commands are dispatched in lockstep: every worker acknowledges every
command before the next is sent, so a reply mismatch, a dead process,
or a timeout all surface as :class:`WorkerCrashError` — the signal for
the database to degrade to its serial executor.

Beyond the relational operators, the pool speaks a *generic task
protocol*: ``("task", "module:attr", payload)`` resolves the named
callable by import (so it works under both fork and spawn starts) and
invokes it as ``handler(worker_state, payload)``.  Parallel inference
(:mod:`repro.infer.parallel`) rides the pool this way, reusing the
lockstep dispatch, crash detection, and the worker-to-worker exchange
queues without touching the relational command set.
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
import queue
import signal
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..relational.cost import CostClock
from ..relational.expr import Expr
from ..relational.schema import TableSchema
from ..relational.table import Table
from ..relational.types import Row
from . import rowops
from .cluster import MPPDatabase, MPPTable, Shards
from .plannodes import DistDesc

__all__ = ["WorkerCrashError", "WorkerPool", "PooledOps", "RemoteShards"]

#: how often blocked queue reads wake up to re-check liveness/deadlines
_POLL_S = 0.05
#: how long a worker waits on a motion exchange before giving up
_EXCHANGE_TIMEOUT_S = 120.0


class WorkerCrashError(RuntimeError):
    """The worker pool died, errored, or stopped responding."""


class RemoteShards:
    """A distributed intermediate result living inside the worker pool.

    The master only holds the metadata (per-segment row counts and the
    distribution); the rows stay in the workers until ``fetch``."""

    __slots__ = ("columns", "dist", "handle", "counts")

    def __init__(
        self,
        columns: List[str],
        dist: DistDesc,
        handle: int,
        counts: List[int],
    ) -> None:
        self.columns = columns
        self.dist = dist
        self.handle = handle
        self.counts = counts

    @property
    def total_rows(self) -> int:
        if self.dist.kind == "replicated":
            return self.counts[0]
        return sum(self.counts)


# ---------------------------------------------------------------------- pool


class WorkerPool:
    """A persistent pool of segment-executor processes."""

    def __init__(
        self,
        nseg: int,
        num_workers: int,
        reply_timeout: float = 60.0,
        start_method: Optional[str] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1 (0 means serial mode)")
        self.nseg = nseg
        self.num_workers = min(int(num_workers), nseg)
        self.reply_timeout = reply_timeout
        if start_method is None:
            start_method = os.environ.get("REPRO_MPP_START_METHOD")
        if start_method is None:
            # fork keeps spawn latency negligible; spawn is the portable fallback
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        context = multiprocessing.get_context(start_method)
        #: segment -> owning worker id
        self.seg_worker: Tuple[int, ...] = tuple(
            seg % self.num_workers for seg in range(nseg)
        )
        self.command_queues = [context.Queue() for _ in range(self.num_workers)]
        self.reply_queue = context.Queue()
        self.exchange_queues = [context.Queue() for _ in range(self.num_workers)]
        self._seq = 0
        self._epoch = 0
        self._handle = 0
        self._closed = False
        self.processes = []
        # Forked children inherit the parent's SIGINT disposition, and a
        # Ctrl-C aimed at the master reaches the whole process group —
        # ignore it around the fork so workers are never interruptible,
        # even during bootstrap (workers re-ignore it themselves for the
        # spawn start method, where dispositions reset).
        restore_sigint = None
        if threading.current_thread() is threading.main_thread():
            restore_sigint = signal.signal(signal.SIGINT, signal.SIG_IGN)
        try:
            for worker_id in range(self.num_workers):
                process = context.Process(
                    target=_worker_main,
                    args=(
                        worker_id,
                        self.segments_of(worker_id),
                        nseg,
                        self.seg_worker,
                        self.command_queues[worker_id],
                        self.reply_queue,
                        self.exchange_queues,
                    ),
                    name=f"repro-mpp-worker-{worker_id}",
                    daemon=True,
                )
                process.start()
                self.processes.append(process)
        finally:
            if restore_sigint is not None:
                signal.signal(signal.SIGINT, restore_sigint)

    def segments_of(self, worker_id: int) -> List[int]:
        return [
            seg for seg in range(self.nseg) if self.seg_worker[seg] == worker_id
        ]

    def next_handle(self) -> int:
        self._handle += 1
        return self._handle

    def next_epoch(self) -> int:
        self._epoch += 1
        return self._epoch

    # -- lockstep dispatch ---------------------------------------------------

    def dispatch(
        self,
        command: Optional[Tuple] = None,
        per_worker: Optional[Callable[[int, List[int]], Tuple]] = None,
    ) -> Dict[int, dict]:
        """Send one command to every worker and collect every ack.

        Returns ``{worker_id: payload}``.  Any worker error, death, or
        timeout raises :class:`WorkerCrashError` (a worker-side failure
        can leave peers blocked inside a motion, so the pool is not
        reusable after one — the database degrades and retries
        serially)."""
        if self._closed:
            raise WorkerCrashError("worker pool is closed")
        self._seq += 1
        seq = self._seq
        try:
            for worker_id, command_queue in enumerate(self.command_queues):
                message = (
                    command
                    if per_worker is None
                    else per_worker(worker_id, self.segments_of(worker_id))
                )
                command_queue.put((seq, message))
        except (OSError, ValueError) as error:
            raise WorkerCrashError(f"worker pool unusable: {error}") from error
        payloads: Dict[int, dict] = {}
        deadline = time.monotonic() + self.reply_timeout
        while len(payloads) < self.num_workers:
            try:
                worker_id, reply_seq, status, payload = self.reply_queue.get(
                    timeout=_POLL_S
                )
            except queue.Empty:
                self._ensure_alive()
                if time.monotonic() > deadline:
                    raise WorkerCrashError(
                        "worker pool stopped responding "
                        f"(waited {self.reply_timeout:.0f}s)"
                    )
                continue
            if reply_seq != seq:
                continue  # stale ack from an aborted statement
            if status != "ok":
                raise WorkerCrashError(f"worker {worker_id} failed: {payload}")
            payloads[worker_id] = payload
        return payloads

    def _ensure_alive(self) -> None:
        for worker_id, process in enumerate(self.processes):
            if not process.is_alive():
                raise WorkerCrashError(
                    f"worker {worker_id} died (exit code {process.exitcode})"
                )

    def ping(self) -> bool:
        """Round-trip a no-op through every worker (liveness check)."""
        self.dispatch(("ping",))
        return True

    def run_tasks(self, spec: str, payloads: Sequence[Any]) -> Dict[int, Any]:
        """Run a generic task on every worker (one payload each).

        ``spec`` names the handler as ``"module:attr"``; it is imported
        inside each worker and called as ``handler(worker_state,
        payload)``.  Returns ``{worker_id: handler return value}``;
        failures surface as :class:`WorkerCrashError` like any other
        lockstep command."""
        if len(payloads) != self.num_workers:
            raise ValueError(
                f"need one payload per worker ({self.num_workers}), "
                f"got {len(payloads)}"
            )
        replies = self.dispatch(
            per_worker=lambda worker_id, _segs: (
                "task", spec, payloads[worker_id],
            )
        )
        return {
            worker_id: reply["result"] for worker_id, reply in replies.items()
        }

    def reset_intermediates(self) -> None:
        """Drop worker-side intermediate frames between statements."""
        self.dispatch(("reset",))

    # -- shutdown ------------------------------------------------------------

    def close(self, force: bool = False) -> None:
        """Stop all workers; ``force`` skips the polite shutdown round."""
        if self._closed:
            self._terminate()
            return
        self._closed = True
        if not force:
            self._seq += 1
            for command_queue in self.command_queues:
                try:
                    command_queue.put((self._seq, ("shutdown",)))
                except (OSError, ValueError):
                    pass
            for process in self.processes:
                process.join(timeout=2.0)
        self._terminate()
        for mp_queue in (
            *self.command_queues,
            self.reply_queue,
            *self.exchange_queues,
        ):
            mp_queue.close()
            mp_queue.cancel_join_thread()

    def _terminate(self) -> None:
        for process in self.processes:
            if process.is_alive():
                process.terminate()
        for process in self.processes:
            process.join(timeout=2.0)


# ---------------------------------------------------------------------- ops


class PooledOps:
    """Row-level operator execution pushed down into the worker pool.

    The planner's counterpart to ``_SerialOps``: same method surface,
    but each call dispatches one command to every worker and returns a
    :class:`RemoteShards` whose rows stay in the pool.  Worker-side cost
    clocks ride back on the acks and are merged into the master's
    per-segment clocks, so the planner's timing and EXPLAIN output are
    identical to serial execution."""

    remote = True

    def __init__(self, cluster: MPPDatabase) -> None:
        if cluster.pool is None:
            raise WorkerCrashError("database has no worker pool")
        self.cluster = cluster
        self.pool: WorkerPool = cluster.pool
        self.nseg = cluster.nseg
        self.clocks = cluster.segment_clocks

    def _run(
        self, command: Tuple, columns: List[str], dist: DistDesc
    ) -> RemoteShards:
        handle = command[1]
        payloads = self.pool.dispatch(command)
        counts = [0] * self.nseg
        for payload in payloads.values():
            for seg, count in payload.get("counts", {}).items():
                counts[seg] = count
            for seg, delta in payload.get("deltas", {}).items():
                self.clocks[seg].merge(delta)
        return RemoteShards(columns, dist, handle, counts)

    def scan(
        self, table: MPPTable, columns: List[str], dist: DistDesc
    ) -> RemoteShards:
        return self._run(
            ("scan", self.pool.next_handle(), table.name), columns, dist
        )

    def values(self, rows: List[Row], columns: List[str]) -> RemoteShards:
        return self._run(
            ("values", self.pool.next_handle(), list(rows)),
            columns,
            DistDesc.arbitrary(),
        )

    def filter(self, child: RemoteShards, predicate: Expr) -> RemoteShards:
        command = (
            "filter", self.pool.next_handle(), child.handle,
            predicate, child.columns,
        )
        return self._run(command, child.columns, child.dist)

    def project(
        self,
        child: RemoteShards,
        outputs: Sequence[Tuple[Expr, str]],
        out_columns: List[str],
        dist: DistDesc,
    ) -> RemoteShards:
        command = (
            "project", self.pool.next_handle(), child.handle,
            list(outputs), child.columns,
        )
        return self._run(command, out_columns, dist)

    def join(
        self,
        left: RemoteShards,
        right: RemoteShards,
        lpos: List[int],
        rpos: List[int],
        residual: Optional[Expr],
        out_columns: List[str],
        out_dist: DistDesc,
    ) -> RemoteShards:
        command = (
            "join", self.pool.next_handle(), left.handle, right.handle,
            list(lpos), list(rpos), residual, out_columns,
            left.dist.kind == "replicated", right.dist.kind == "replicated",
        )
        return self._run(command, out_columns, out_dist)

    def anti_join(
        self,
        left: RemoteShards,
        right: RemoteShards,
        lpos: List[int],
        rpos: List[int],
        out_dist: DistDesc,
    ) -> RemoteShards:
        command = (
            "anti_join", self.pool.next_handle(), left.handle, right.handle,
            list(lpos), list(rpos),
            left.dist.kind == "replicated", right.dist.kind == "replicated",
        )
        return self._run(command, left.columns, out_dist)

    def distinct(self, child: RemoteShards) -> RemoteShards:
        command = ("distinct", self.pool.next_handle(), child.handle)
        return self._run(command, child.columns, child.dist)

    def aggregate(
        self,
        child: RemoteShards,
        group_pos: List[int],
        aggregates: Sequence[Tuple[str, Optional[str], str]],
        agg_pos: Sequence[Optional[int]],
        having: Optional[Expr],
        out_columns: List[str],
        global_agg: bool,
        out_dist: DistDesc,
    ) -> RemoteShards:
        command = (
            "aggregate", self.pool.next_handle(), child.handle,
            list(group_pos), list(aggregates), list(agg_pos), having,
            out_columns, global_agg,
        )
        return self._run(command, out_columns, out_dist)

    def union(
        self, children: List[RemoteShards], out_columns: List[str], dist: DistDesc
    ) -> RemoteShards:
        sources = [
            (child.handle, child.dist.kind == "replicated") for child in children
        ]
        command = ("union", self.pool.next_handle(), sources)
        return self._run(command, out_columns, dist)

    def redistribute(
        self, shards: RemoteShards, positions: List[int], keys: List[str]
    ) -> RemoteShards:
        command = (
            "redistribute", self.pool.next_handle(), shards.handle,
            list(positions), self.pool.next_epoch(),
            shards.dist.kind == "replicated",
        )
        return self._run(command, shards.columns, DistDesc.hash_on(keys))

    def broadcast(self, shards: RemoteShards) -> RemoteShards:
        command = (
            "broadcast", self.pool.next_handle(), shards.handle,
            self.pool.next_epoch(), shards.dist.kind == "replicated",
        )
        return self._run(command, shards.columns, DistDesc.replicated())

    def gather_first(self, shards: RemoteShards) -> RemoteShards:
        command = (
            "gather_first", self.pool.next_handle(), shards.handle,
            self.pool.next_epoch(), shards.dist.kind == "replicated",
        )
        return self._run(command, shards.columns, DistDesc.arbitrary())

    def sort(
        self, child: RemoteShards, positions: Sequence[Tuple[int, bool]]
    ) -> RemoteShards:
        command = (
            "sort", self.pool.next_handle(), child.handle, list(positions)
        )
        return self._run(command, child.columns, DistDesc.arbitrary())

    def limit(self, child: RemoteShards, limit: int) -> RemoteShards:
        command = ("limit", self.pool.next_handle(), child.handle, limit)
        return self._run(command, child.columns, DistDesc.arbitrary())

    def localize(self, shards: RemoteShards) -> Shards:
        """Fetch a remote result into a master-local :class:`Shards`."""
        if shards.dist.kind == "replicated":
            payloads = self.pool.dispatch(("fetch", shards.handle, (0,)))
            rows: List[Row] = []
            for payload in payloads.values():
                if 0 in payload["rows"]:
                    rows = payload["rows"][0]
            # full copies on every segment, shared read-only
            parts = [rows for _ in range(self.nseg)]
        else:
            payloads = self.pool.dispatch(("fetch", shards.handle, None))
            parts = [[] for _ in range(self.nseg)]
            for payload in payloads.values():
                for seg, seg_rows in payload["rows"].items():
                    parts[seg] = seg_rows
        return Shards(shards.columns, parts, shards.dist)


# ---------------------------------------------------------------------- worker


class _WorkerState:
    """Everything one worker process owns: its segments' table shards,
    intermediate frames keyed by master-assigned handles, and the motion
    exchange plumbing."""

    def __init__(
        self,
        worker_id: int,
        segments: List[int],
        nseg: int,
        seg_worker: Sequence[int],
        exchange_queues: Sequence,
    ) -> None:
        self.worker_id = worker_id
        self.segments = list(segments)
        self.nseg = nseg
        self.seg_worker = seg_worker
        self.exchange_queues = exchange_queues
        self.inbox = exchange_queues[worker_id]
        self.owns_first = 0 in self.segments
        #: table name -> segment -> shard
        self.tables: Dict[str, Dict[int, Table]] = {}
        #: intermediate handle -> segment -> rows
        self.frames: Dict[int, Dict[int, List[Row]]] = {}
        #: task-exchange pieces that arrived ahead of their barrier:
        #: epoch -> from_worker -> payload (tasks run many barriers per
        #: command, so a fast peer's next-epoch piece must be buffered,
        #: not dropped like a stale motion piece)
        self.task_mail: Dict[Any, Dict[int, Any]] = {}

    def execute(self, command: Tuple) -> dict:
        handler = getattr(self, "_cmd_" + command[0])
        return handler(*command[1:])

    # -- helpers -------------------------------------------------------------

    def _fresh_clocks(self) -> Dict[int, CostClock]:
        return {seg: CostClock() for seg in self.segments}

    def _store(
        self,
        handle: int,
        frame: Dict[int, List[Row]],
        deltas: Optional[Dict[int, CostClock]] = None,
    ) -> dict:
        self.frames[handle] = frame
        payload = {"counts": {seg: len(rows) for seg, rows in frame.items()}}
        if deltas:
            payload["deltas"] = deltas
        return payload

    def _send(self, epoch: int, from_seg: int, to_seg: int, rows: List[Row]) -> None:
        self.exchange_queues[self.seg_worker[to_seg]].put(
            (epoch, from_seg, to_seg, rows)
        )

    # -- generic worker-to-worker exchange (task protocol) --------------------

    def send_to_worker(self, epoch: Any, to_worker: int, payload: Any) -> None:
        """Ship an arbitrary payload to a peer worker's inbox.

        Same wire shape as motions — ``(epoch, from, to, payload)`` —
        but addressed by *worker* id, not segment.  Task code uses tuple
        epochs (e.g. ``(base, sweep, color)``), which can never collide
        with the integer motion epochs on a shared inbox."""
        self.exchange_queues[to_worker].put(
            (epoch, self.worker_id, to_worker, payload)
        )

    def collect_from_workers(
        self, epoch: Any, from_workers: Sequence[int]
    ) -> Dict[int, Any]:
        """Await one payload per peer for ``epoch``.

        Unlike motions — one collective exchange per lockstep command —
        a task runs many barriers inside one command, so peers drift out
        of step: a fast peer's piece for a *later* barrier can arrive
        while this worker still waits on the current one.  Those pieces
        are buffered in :attr:`task_mail` and drained when their barrier
        comes up; only non-tuple (motion) epochs are dropped as stale.
        """
        expected = set(from_workers)
        got: Dict[int, Any] = {}
        buffered = self.task_mail.get(epoch)
        if buffered:
            for peer in list(expected):
                if peer in buffered:
                    got[peer] = buffered.pop(peer)
                    expected.discard(peer)
            if not buffered:
                self.task_mail.pop(epoch, None)
        deadline = time.monotonic() + _EXCHANGE_TIMEOUT_S
        while expected:
            try:
                message = self.inbox.get(timeout=_POLL_S)
            except queue.Empty:
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"task epoch {epoch} timed out waiting for {expected}"
                    )
                continue
            msg_epoch, from_worker, _to_worker, payload = message
            if msg_epoch == epoch and from_worker in expected:
                got[from_worker] = payload
                expected.discard(from_worker)
            elif isinstance(msg_epoch, tuple):
                self.task_mail.setdefault(msg_epoch, {})[from_worker] = payload
            # else: stale piece from an aborted motion — drop
        return got

    def _collect(
        self, epoch: Any, expected: Set[Tuple[int, int]]
    ) -> Dict[Tuple[int, int], List[Row]]:
        """Pull this epoch's expected (from_seg, to_seg) pieces off the
        inbox, dropping leftovers from aborted statements."""
        got: Dict[Tuple[int, int], List[Row]] = {}
        deadline = time.monotonic() + _EXCHANGE_TIMEOUT_S
        while expected:
            try:
                message = self.inbox.get(timeout=_POLL_S)
            except queue.Empty:
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"motion epoch {epoch} timed out waiting for {expected}"
                    )
                continue
            msg_epoch, from_seg, to_seg, rows = message
            if msg_epoch != epoch:
                continue  # stale piece from an aborted statement
            got[(from_seg, to_seg)] = rows
            expected.discard((from_seg, to_seg))
        return got

    # -- operators -----------------------------------------------------------

    def _cmd_scan(self, handle: int, table_name: str) -> dict:
        deltas = self._fresh_clocks()
        shards = self.tables[table_name]
        frame = {
            seg: rowops.scan_rows(shards[seg].rows, deltas[seg])
            for seg in self.segments
        }
        return self._store(handle, frame, deltas)

    def _cmd_values(self, handle: int, rows: List[Row]) -> dict:
        frame = {
            seg: (list(rows) if seg == 0 else []) for seg in self.segments
        }
        return self._store(handle, frame)

    def _cmd_filter(
        self, handle: int, source: int, predicate: Expr, columns: List[str]
    ) -> dict:
        bound = predicate.bind(columns)
        deltas = self._fresh_clocks()
        frame = {
            seg: rowops.filter_rows(self.frames[source][seg], bound, deltas[seg])
            for seg in self.segments
        }
        return self._store(handle, frame, deltas)

    def _cmd_project(
        self,
        handle: int,
        source: int,
        outputs: Sequence[Tuple[Expr, str]],
        columns: List[str],
    ) -> dict:
        evaluators = [expr.bind(columns) for expr, _ in outputs]
        deltas = self._fresh_clocks()
        frame = {
            seg: rowops.project_rows(
                self.frames[source][seg], evaluators, deltas[seg]
            )
            for seg in self.segments
        }
        return self._store(handle, frame, deltas)

    def _cmd_join(
        self,
        handle: int,
        left: int,
        right: int,
        lpos: List[int],
        rpos: List[int],
        residual: Optional[Expr],
        out_columns: List[str],
        left_rep: bool,
        right_rep: bool,
    ) -> dict:
        bound = residual.bind(out_columns) if residual is not None else None
        deltas = self._fresh_clocks()
        frame = {}
        for seg in self.segments:
            if left_rep and right_rep and seg != 0:
                frame[seg] = []
                continue
            frame[seg] = rowops.hash_join_rows(
                self.frames[left][seg], self.frames[right][seg],
                lpos, rpos, bound, deltas[seg],
            )
        return self._store(handle, frame, deltas)

    def _cmd_anti_join(
        self,
        handle: int,
        left: int,
        right: int,
        lpos: List[int],
        rpos: List[int],
        left_rep: bool,
        right_rep: bool,
    ) -> dict:
        deltas = self._fresh_clocks()
        frame = {}
        for seg in self.segments:
            if left_rep and seg != 0:
                frame[seg] = []
                continue
            frame[seg] = rowops.anti_join_rows(
                self.frames[left][seg], self.frames[right][seg],
                lpos, rpos, deltas[seg],
            )
        return self._store(handle, frame, deltas)

    def _cmd_distinct(self, handle: int, source: int) -> dict:
        deltas = self._fresh_clocks()
        frame = {
            seg: rowops.distinct_rows(self.frames[source][seg], deltas[seg])
            for seg in self.segments
        }
        return self._store(handle, frame, deltas)

    def _cmd_aggregate(
        self,
        handle: int,
        source: int,
        group_pos: List[int],
        aggregates: Sequence[Tuple[str, Optional[str], str]],
        agg_pos: Sequence[Optional[int]],
        having: Optional[Expr],
        out_columns: List[str],
        global_agg: bool,
    ) -> dict:
        bound = having.bind(out_columns) if having is not None else None
        deltas = self._fresh_clocks()
        frame = {}
        for seg in self.segments:
            if global_agg and seg != 0:
                frame[seg] = []
                continue
            frame[seg] = rowops.aggregate_rows(
                self.frames[source][seg], group_pos, aggregates, agg_pos,
                bound, global_agg, deltas[seg],
            )
        return self._store(handle, frame, deltas)

    def _cmd_union(
        self, handle: int, sources: Sequence[Tuple[int, bool]]
    ) -> dict:
        deltas = self._fresh_clocks()
        frame: Dict[int, List[Row]] = {seg: [] for seg in self.segments}
        for source, replicated in sources:
            if replicated:
                if self.owns_first:
                    frame[0].extend(self.frames[source][0])
            else:
                for seg in self.segments:
                    frame[seg].extend(self.frames[source][seg])
        # match the serial driver: union charges rows_output per segment
        for seg in self.segments:
            deltas[seg].rows_output += len(frame[seg])
        return self._store(handle, frame, deltas)

    # -- motions -------------------------------------------------------------

    def _cmd_redistribute(
        self,
        handle: int,
        source: int,
        positions: List[int],
        epoch: int,
        source_rep: bool,
    ) -> dict:
        deltas = self._fresh_clocks()
        source_segs = (0,) if source_rep else tuple(range(self.nseg))
        for seg in self.segments:
            if source_rep and seg != 0:
                continue
            pieces = rowops.partition_by_hash(
                self.frames[source][seg], positions, self.nseg
            )
            for target, piece in enumerate(pieces):
                self._send(epoch, seg, target, piece)
        expected = {(f, t) for f in source_segs for t in self.segments}
        got = self._collect(epoch, expected)
        frame = {}
        for seg in self.segments:
            rows: List[Row] = []
            # ascending source order = the serial executor's append order
            for from_seg in source_segs:
                piece = got[(from_seg, seg)]
                if from_seg != seg:
                    deltas[seg].rows_shipped += len(piece)
                rows.extend(piece)
            frame[seg] = rows
        return self._store(handle, frame, deltas)

    def _cmd_broadcast(
        self, handle: int, source: int, epoch: int, source_rep: bool
    ) -> dict:
        deltas = self._fresh_clocks()
        if source_rep:
            # every segment already holds a full copy
            frame = {
                seg: list(self.frames[source][seg]) for seg in self.segments
            }
            return self._store(handle, frame, deltas)
        for seg in self.segments:
            rows = self.frames[source][seg]
            for target in range(self.nseg):
                self._send(epoch, seg, target, rows)
        expected = {(f, t) for f in range(self.nseg) for t in self.segments}
        got = self._collect(epoch, expected)
        frame = {}
        for seg in self.segments:
            rows = []
            for from_seg in range(self.nseg):
                piece = got[(from_seg, seg)]
                if from_seg != seg:
                    deltas[seg].rows_broadcast += len(piece)
                rows.extend(piece)
            frame[seg] = rows
        return self._store(handle, frame, deltas)

    def _cmd_gather_first(
        self, handle: int, source: int, epoch: int, source_rep: bool
    ) -> dict:
        deltas = self._fresh_clocks()
        frame: Dict[int, List[Row]] = {seg: [] for seg in self.segments}
        if source_rep:
            if self.owns_first:
                frame[0] = list(self.frames[source][0])
            return self._store(handle, frame, deltas)
        for seg in self.segments:
            self._send(epoch, seg, 0, self.frames[source][seg])
        if self.owns_first:
            got = self._collect(epoch, {(f, 0) for f in range(self.nseg)})
            rows: List[Row] = []
            for from_seg in range(self.nseg):
                piece = got[(from_seg, 0)]
                if from_seg != 0:
                    deltas[0].rows_shipped += len(piece)
                rows.extend(piece)
            frame[0] = rows
        return self._store(handle, frame, deltas)

    def _cmd_sort(
        self, handle: int, source: int, positions: Sequence[Tuple[int, bool]]
    ) -> dict:
        deltas = self._fresh_clocks()
        frame: Dict[int, List[Row]] = {seg: [] for seg in self.segments}
        if self.owns_first:
            frame[0] = rowops.sort_rows(
                self.frames[source][0], positions, deltas[0]
            )
        return self._store(handle, frame, deltas)

    def _cmd_limit(self, handle: int, source: int, limit: int) -> dict:
        frame: Dict[int, List[Row]] = {seg: [] for seg in self.segments}
        if self.owns_first:
            frame[0] = list(self.frames[source][0][:limit])
        return self._store(handle, frame)

    # -- result fetch / cleanup ----------------------------------------------

    def _cmd_fetch(
        self, handle: int, segments: Optional[Sequence[int]]
    ) -> dict:
        frame = self.frames[handle]
        if segments is None:
            wanted = self.segments
        else:
            owned = set(self.segments)
            wanted = [seg for seg in segments if seg in owned]
        return {"rows": {seg: frame[seg] for seg in wanted}}

    def _cmd_reset(self) -> dict:
        self.frames.clear()
        return {}

    def _cmd_ping(self) -> dict:
        return {}

    def _cmd_task(self, spec: str, payload: Any) -> dict:
        """Generic task: resolve ``module:attr`` and run it in-process."""
        # leftovers can only come from an aborted earlier task dispatch
        self.task_mail.clear()
        return {"result": _resolve_task(spec)(self, payload)}

    # -- DML mirroring -------------------------------------------------------

    def _cmd_create_table(self, table_schema: TableSchema) -> dict:
        self.tables[table_schema.name] = {
            seg: Table(table_schema) for seg in self.segments
        }
        return {}

    def _cmd_drop_table(self, name: str) -> dict:
        self.tables.pop(name, None)
        return {}

    def _cmd_truncate(self, name: str) -> dict:
        for shard in self.tables[name].values():
            shard.truncate()
        return {}

    def _cmd_load_shards(
        self, name: str, shard_map: Dict[int, List[Row]], truncate_first: bool
    ) -> dict:
        shards = self.tables[name]
        if truncate_first:
            for shard in shards.values():
                shard.truncate()
        for seg, rows in shard_map.items():
            # the master validated these rows before shipping them
            shards[seg].insert(rows, validate=False)
        return {}

    def _cmd_insert_shards(
        self, name: str, shard_map: Dict[int, List[Row]]
    ) -> dict:
        shards = self.tables[name]
        for seg, rows in shard_map.items():
            shards[seg].insert(rows, validate=False)
        return {}

    def _cmd_delete_keys(
        self, name: str, column_names: Tuple[str, ...], keys: List[Row]
    ) -> dict:
        key_set = set(keys)
        for shard in self.tables[name].values():
            shard.delete_in(column_names, key_set)
        return {}


#: resolved task handlers, cached per worker process
_TASK_CACHE: Dict[str, Callable[[_WorkerState, Any], Any]] = {}


def _resolve_task(spec: str) -> Callable[[_WorkerState, Any], Any]:
    """Import-resolve a ``"module:attr"`` task spec (cached).

    Resolution happens inside the worker, so the protocol needs no
    pre-registration and survives the spawn start method (where workers
    do not inherit the master's module state)."""
    handler = _TASK_CACHE.get(spec)
    if handler is None:
        module_name, _, attr = spec.partition(":")
        if not module_name or not attr:
            raise ValueError(f"task spec must be 'module:attr', got {spec!r}")
        handler = getattr(importlib.import_module(module_name), attr)
        _TASK_CACHE[spec] = handler
    return handler


def _worker_main(
    worker_id: int,
    segments: List[int],
    nseg: int,
    seg_worker: Sequence[int],
    command_queue: Any,
    reply_queue: Any,
    exchange_queues: Sequence[Any],
) -> None:
    """Entry point of one worker process: a command loop in lockstep
    with the master.  Every command gets exactly one ack."""
    # Ctrl-C reaches the whole process group; only the master decides
    # when workers stop (via the shutdown command or terminate()),
    # otherwise an interactive interrupt kills the pool mid-statement.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    state = _WorkerState(worker_id, segments, nseg, seg_worker, exchange_queues)
    while True:
        try:
            # the master owns this process's lifetime (shutdown command)
            seq, command = command_queue.get()  # lint: disable=RC004
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if command[0] == "shutdown":
            try:
                reply_queue.put((worker_id, seq, "ok", {}))
            except (OSError, ValueError):
                pass
            return
        try:
            payload = state.execute(command)
            reply_queue.put((worker_id, seq, "ok", payload))
        except BaseException as error:  # forwarded to the master
            try:
                reply_queue.put(
                    (worker_id, seq, "error", f"{type(error).__name__}: {error}")
                )
            except (OSError, ValueError):
                return
