"""Per-segment row-level operators for the MPP executor.

Exactly one implementation of each operator's row loop lives here, and
both drivers reuse it: the serial executor iterates segments in the
master process, while the multi-process executor (:mod:`repro.mpp.workers`)
runs the same functions inside worker processes, one call per owned
segment.  Sharing the loops is what makes the two execution modes
bit-identical — same output rows in the same order, same
:class:`~repro.relational.cost.CostClock` charges.

Each operator dispatches on the relational engine selection
(:func:`repro.relational.columnar.resolve_executor`): under the
default ``"columnar"`` engine the hot loops run as vectorized kernels
from :mod:`repro.relational.columnar`; ``"rows"`` keeps the original
row loops.  The two paths emit identical rows in identical order and
charge identical clocks, so segment execution is engine-independent —
the explicit ``engine=`` argument is threaded down by the serial
driver, while worker processes resolve from ``PROBKB_EXECUTOR``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..relational import columnar
from ..relational.columnar import resolve_executor
from ..relational.cost import CostClock
from ..relational.executor import _aggregate
from ..relational.types import Row
from .distribution import stable_hash

Predicate = Optional[Callable[[Row], bool]]


def _columnar(engine: Optional[str]) -> bool:
    return resolve_executor(engine) == "columnar"


def scan_rows(
    stored_rows: Sequence[Row],
    clock: CostClock,
    engine: Optional[str] = None,
) -> List[Row]:
    clock.rows_scanned += len(stored_rows)
    return list(stored_rows)


def filter_rows(
    rows: Sequence[Row],
    predicate: Callable[[Row], bool],
    clock: CostClock,
    engine: Optional[str] = None,
) -> List[Row]:
    kept = [row for row in rows if predicate(row)]
    clock.rows_probed += len(rows)
    clock.rows_output += len(kept)
    return kept


def project_rows(
    rows: Sequence[Row],
    evaluators: Sequence[Callable[[Row], object]],
    clock: CostClock,
    engine: Optional[str] = None,
) -> List[Row]:
    projected = [tuple(fn(row) for fn in evaluators) for row in rows]
    clock.rows_output += len(projected)
    return projected


def hash_join_rows(
    left_rows: List[Row],
    right_rows: List[Row],
    lpos: List[int],
    rpos: List[int],
    residual: Predicate,
    clock: CostClock,
    engine: Optional[str] = None,
) -> List[Row]:
    """Hash join two row lists; NULL keys never match, the residual
    predicate filters after the join."""
    if _columnar(engine):
        return columnar.join_rows(
            left_rows, right_rows, lpos, rpos, residual, clock
        )
    build_left = len(left_rows) <= len(right_rows)
    if build_left:
        build_rows, probe_rows = left_rows, right_rows
        build_pos, probe_pos = lpos, rpos
    else:
        build_rows, probe_rows = right_rows, left_rows
        build_pos, probe_pos = rpos, lpos

    table: Dict[Tuple, List[Row]] = defaultdict(list)
    for row in build_rows:
        key = tuple(row[pos] for pos in build_pos)
        if None in key:
            continue
        table[key].append(row)
    clock.rows_built += len(build_rows)

    out: List[Row] = []
    append = out.append
    for row in probe_rows:
        matches = table.get(tuple(row[pos] for pos in probe_pos))
        if not matches:
            continue
        for match in matches:
            combined = match + row if build_left else row + match
            append(combined)
    clock.rows_probed += len(probe_rows)
    clock.rows_output += len(out)
    if residual is not None:
        out = [row for row in out if residual(row)]
    return out


def anti_join_rows(
    left_rows: Sequence[Row],
    right_rows: Sequence[Row],
    lpos: Sequence[int],
    rpos: Sequence[int],
    clock: CostClock,
    engine: Optional[str] = None,
) -> List[Row]:
    if _columnar(engine):
        return columnar.anti_join_rows(
            left_rows, right_rows, lpos, rpos, clock
        )
    existing = {tuple(row[pos] for pos in rpos) for row in right_rows}
    clock.rows_built += len(right_rows)
    kept = [
        row
        for row in left_rows
        if tuple(row[pos] for pos in lpos) not in existing
    ]
    clock.rows_probed += len(left_rows)
    clock.rows_output += len(kept)
    return kept


def distinct_rows(
    rows: Sequence[Row],
    clock: CostClock,
    engine: Optional[str] = None,
) -> List[Row]:
    if _columnar(engine):
        return columnar.distinct_rows(rows, clock)
    seen: Set[Row] = set()
    deduped = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            deduped.append(row)
    clock.rows_probed += len(rows)
    clock.rows_output += len(deduped)
    return deduped


def aggregate_rows(
    rows: Sequence[Row],
    group_pos: Sequence[int],
    aggregates: Sequence[Tuple[str, Optional[str], str]],
    agg_pos: Sequence[Optional[int]],
    having: Predicate,
    global_agg: bool,
    clock: CostClock,
    engine: Optional[str] = None,
) -> List[Row]:
    groups: Dict[Tuple, List[Row]] = defaultdict(list)
    for row in rows:
        groups[tuple(row[pos] for pos in group_pos)].append(row)
    if global_agg and not groups:
        groups[()] = []
    out_rows = []
    for key, members in groups.items():
        values = tuple(
            _aggregate(func, pos, members)
            for (func, _, _), pos in zip(aggregates, agg_pos)
        )
        out_row = key + values
        if having is None or having(out_row):
            out_rows.append(out_row)
    clock.rows_probed += len(rows)
    clock.rows_output += len(out_rows)
    return out_rows


def sort_rows(
    rows: Sequence[Row],
    positions: Sequence[Tuple[int, bool]],
    clock: CostClock,
    engine: Optional[str] = None,
) -> List[Row]:
    """Stable multi-key sort, NULLS FIRST in both directions (matching
    the single-node executor and the sqlite bridge)."""
    if _columnar(engine):
        return columnar.sort_rows(rows, positions, clock)
    ordered = list(rows)
    for pos, descending in reversed(list(positions)):
        ordered.sort(
            key=columnar.null_first_sort_key(pos, descending),
            reverse=descending,
        )
    clock.rows_probed += len(ordered)
    clock.rows_output += len(ordered)
    return ordered


def partition_by_hash(
    rows: Sequence[Row], positions: Sequence[int], nseg: int
) -> List[List[Row]]:
    """Split rows into per-target-segment pieces by stable hash.

    Callers charge shipping costs themselves — who pays depends on the
    motion (redistribute charges receivers, broadcast charges copies).
    """
    pieces: List[List[Row]] = [[] for _ in range(nseg)]
    for row in rows:
        target = stable_hash(tuple(row[pos] for pos in positions)) % nseg
        pieces[target].append(row)
    return pieces
