"""Per-segment row-level operators for the MPP executor.

Exactly one implementation of each operator's row loop lives here, and
both drivers reuse it: the serial executor iterates segments in the
master process, while the multi-process executor (:mod:`repro.mpp.workers`)
runs the same functions inside worker processes, one call per owned
segment.  Sharing the loops is what makes the two execution modes
bit-identical — same output rows in the same order, same
:class:`~repro.relational.cost.CostClock` charges.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..relational.cost import CostClock
from ..relational.executor import _aggregate
from ..relational.types import Row
from .distribution import stable_hash

Predicate = Optional[Callable[[Row], bool]]


def scan_rows(stored_rows: Sequence[Row], clock: CostClock) -> List[Row]:
    clock.rows_scanned += len(stored_rows)
    return list(stored_rows)


def filter_rows(
    rows: Sequence[Row], predicate: Callable[[Row], bool], clock: CostClock
) -> List[Row]:
    kept = [row for row in rows if predicate(row)]
    clock.rows_probed += len(rows)
    clock.rows_output += len(kept)
    return kept


def project_rows(
    rows: Sequence[Row],
    evaluators: Sequence[Callable[[Row], object]],
    clock: CostClock,
) -> List[Row]:
    projected = [tuple(fn(row) for fn in evaluators) for row in rows]
    clock.rows_output += len(projected)
    return projected


def hash_join_rows(
    left_rows: List[Row],
    right_rows: List[Row],
    lpos: List[int],
    rpos: List[int],
    residual: Predicate,
    clock: CostClock,
) -> List[Row]:
    """Hash join two row lists; NULL keys never match, the residual
    predicate filters after the join."""
    build_left = len(left_rows) <= len(right_rows)
    if build_left:
        build_rows, probe_rows = left_rows, right_rows
        build_pos, probe_pos = lpos, rpos
    else:
        build_rows, probe_rows = right_rows, left_rows
        build_pos, probe_pos = rpos, lpos

    table: Dict[Tuple, List[Row]] = defaultdict(list)
    for row in build_rows:
        key = tuple(row[pos] for pos in build_pos)
        if None in key:
            continue
        table[key].append(row)
    clock.rows_built += len(build_rows)

    out: List[Row] = []
    append = out.append
    for row in probe_rows:
        matches = table.get(tuple(row[pos] for pos in probe_pos))
        if not matches:
            continue
        for match in matches:
            combined = match + row if build_left else row + match
            append(combined)
    clock.rows_probed += len(probe_rows)
    clock.rows_output += len(out)
    if residual is not None:
        out = [row for row in out if residual(row)]
    return out


def anti_join_rows(
    left_rows: Sequence[Row],
    right_rows: Sequence[Row],
    lpos: Sequence[int],
    rpos: Sequence[int],
    clock: CostClock,
) -> List[Row]:
    existing = {tuple(row[pos] for pos in rpos) for row in right_rows}
    clock.rows_built += len(right_rows)
    kept = [
        row
        for row in left_rows
        if tuple(row[pos] for pos in lpos) not in existing
    ]
    clock.rows_probed += len(left_rows)
    clock.rows_output += len(kept)
    return kept


def distinct_rows(rows: Sequence[Row], clock: CostClock) -> List[Row]:
    seen: Set[Row] = set()
    deduped = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            deduped.append(row)
    clock.rows_probed += len(rows)
    clock.rows_output += len(deduped)
    return deduped


def aggregate_rows(
    rows: Sequence[Row],
    group_pos: Sequence[int],
    aggregates: Sequence[Tuple[str, Optional[str], str]],
    agg_pos: Sequence[Optional[int]],
    having: Predicate,
    global_agg: bool,
    clock: CostClock,
) -> List[Row]:
    groups: Dict[Tuple, List[Row]] = defaultdict(list)
    for row in rows:
        groups[tuple(row[pos] for pos in group_pos)].append(row)
    if global_agg and not groups:
        groups[()] = []
    out_rows = []
    for key, members in groups.items():
        values = tuple(
            _aggregate(func, pos, members)
            for (func, _, _), pos in zip(aggregates, agg_pos)
        )
        out_row = key + values
        if having is None or having(out_row):
            out_rows.append(out_row)
    clock.rows_probed += len(rows)
    clock.rows_output += len(out_rows)
    return out_rows


def sort_rows(
    rows: Sequence[Row],
    positions: Sequence[Tuple[int, bool]],
    clock: CostClock,
) -> List[Row]:
    """Stable multi-key sort (NULLs first ascending, matching the
    single-node executor)."""
    ordered = list(rows)
    for pos, descending in reversed(list(positions)):
        ordered.sort(
            key=lambda row: (row[pos] is not None, row[pos]),
            reverse=descending,
        )
    clock.rows_probed += len(ordered)
    return ordered


def partition_by_hash(
    rows: Sequence[Row], positions: Sequence[int], nseg: int
) -> List[List[Row]]:
    """Split rows into per-target-segment pieces by stable hash.

    Callers charge shipping costs themselves — who pays depends on the
    motion (redistribute charges receivers, broadcast charges copies).
    """
    pieces: List[List[Row]] = [[] for _ in range(nseg)]
    for row in rows:
        target = stable_hash(tuple(row[pos] for pos in positions)) % nseg
        pieces[target].append(row)
    return pieces
