"""PlanCheck, physical layer: distribution soundness for MPP plans.

A :class:`~repro.mpp.plannodes.PhysicalNode` tree records where every
operator ran and which motions moved rows between segments.  A join
whose inputs are not collocated on the join keys silently drops matches
that live on different segments — a plausible but wrong factor table,
not a crash.  This module re-derives the distribution of every
operator's output bottom-up over the ``DistDesc`` lattice

    singleton  <  hashed-on-keys  <  arbitrary
                  replicated      <  arbitrary

("singleton" is the verifier's name for all-rows-on-one-segment, the
state after a Gather Motion; the planners conservatively *declare* it
as ``arbitrary``, which the verifier accepts as a sound weakening) and
checks, at every node:

* ``PKB209`` — join/anti-join inputs are collocated, replicated, or
  singleton; otherwise a motion is missing;
* ``PKB210`` — a motion whose input already has the target
  distribution is redundant (warning);
* ``PKB211`` — the receiver's distribution requirement holds
  (Distinct input not arbitrary, grouped HashAggregate hashed within
  its group keys, global aggregates/Sort/Limit gathered first);
* ``PKB212`` — the node itself is malformed: unknown kind, wrong child
  count, unparsable detail, or a declared ``dist`` inconsistent with
  the derivation (for motions, with the motion's own semantics).

All distribution checks are skipped when ``num_segments <= 1``: a
single segment holds everything, so every plan is trivially sound.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..relational.verify import (
    ERROR,
    WARNING,
    PlanFinding,
    VerificationReport,
)
from .plannodes import DistDesc, PhysicalNode

__all__ = ["PHYSICAL_CODES", "verify_physical_plan"]

#: code -> (default severity, one-line title); continues LOGICAL_CODES
#: from ``repro.relational.verify`` and is append-only like it.
PHYSICAL_CODES: Dict[str, Tuple[str, str]] = {
    "PKB209": (ERROR, "join inputs are neither collocated on the join "
                      "keys, replicated, nor singleton"),
    "PKB210": (WARNING, "redundant motion: the input already has the "
                        "target distribution"),
    "PKB211": (ERROR, "receiver distribution requirement violated"),
    "PKB212": (ERROR, "malformed physical node or declared distribution "
                      "inconsistent with the derivation"),
}

_SINGLETON = DistDesc("singleton")

#: expected child count per node kind; None = one-or-more
_CHILD_COUNTS: Dict[str, Optional[int]] = {
    "Seq Scan": 0,
    "Values": 0,
    "Filter": 1,
    "Project": 1,
    "Distinct": 1,
    "HashAggregate": 1,
    "Sort": 1,
    "Limit": 1,
    "Redistribute Motion": 1,
    "Broadcast Motion": 1,
    "Gather Motion": 1,
    "Hash Join": 2,
    "Hash Anti Join": 2,
    "Append": None,
}


def _suffix(name: str) -> str:
    return name.rsplit(".", 1)[-1]


def _perm(dist: Optional[DistDesc], keys: Sequence[str]) -> Optional[Tuple[int, ...]]:
    """Positions (into ``keys``) of a hash distribution's columns.

    Exact names first; falls back to unqualified-suffix matching so
    table-level distributions (unqualified) line up with alias-qualified
    join keys.  None when the side is not hashed within ``keys``.
    """
    if dist is None or dist.kind != "hash" or dist.columns is None:
        return None
    key_list = list(keys)
    try:
        return tuple(key_list.index(column) for column in dist.columns)
    except ValueError:
        pass
    suffixes = [_suffix(key) for key in key_list]
    positions = []
    for column in dist.columns:
        suffix = _suffix(column)
        if suffixes.count(suffix) != 1:
            return None
        positions.append(suffixes.index(suffix))
    return tuple(positions)


def _same_dist(a: DistDesc, b: DistDesc) -> bool:
    """Equality up to column qualification (suffix-compared)."""
    if a.kind != b.kind:
        return False
    if a.columns is None or b.columns is None:
        return a.columns == b.columns
    if len(a.columns) != len(b.columns):
        return False
    return all(
        x == y or _suffix(x) == _suffix(y)
        for x, y in zip(a.columns, b.columns)
    )


def _describe(dist: Optional[DistDesc]) -> str:
    if dist is None:
        return "unknown"
    if dist.kind == "hash":
        return f"hash({', '.join(dist.columns or ())})"
    return dist.kind


class _PhysicalChecker:
    def __init__(
        self,
        num_segments: int,
        table_dists: Optional[Mapping[str, DistDesc]],
    ) -> None:
        self.nseg = num_segments
        self.table_dists = table_dists or {}
        self.findings: List[PlanFinding] = []

    def emit(self, code: str, path: str, message: str, **details: object) -> None:
        self.findings.append(
            PlanFinding(
                code=code,
                path=path,
                message=message,
                severity=PHYSICAL_CODES[code][0],
                details=details,
            )
        )

    # -- entry ---------------------------------------------------------------

    def check(self, node: PhysicalNode, path: str) -> Optional[DistDesc]:
        """Derive ``node``'s output distribution; None when unknowable."""
        expected = _CHILD_COUNTS.get(node.kind)
        if node.kind not in _CHILD_COUNTS:
            self.emit(
                "PKB212",
                path,
                f"unknown physical operator kind {node.kind!r}",
                kind=node.kind,
            )
            for index, child in enumerate(node.children):
                self.check(child, f"{path}.{index}")
            return None
        if (expected is None and not node.children) or (
            expected is not None and len(node.children) != expected
        ):
            self.emit(
                "PKB212",
                path,
                f"{node.kind}: has {len(node.children)} children, "
                f"expected {'>=1' if expected is None else expected}",
                kind=node.kind,
                children=len(node.children),
            )
            for index, child in enumerate(node.children):
                self.check(child, f"{path}.{index}")
            return None

        children = [
            self.check(child, f"{path}.{index}")
            for index, child in enumerate(node.children)
        ]
        derived = self._derive(node, path, children)
        if self.nseg > 1:
            derived = self._reconcile(node, path, derived)
        return derived

    def _reconcile(
        self, node: PhysicalNode, path: str, derived: Optional[DistDesc]
    ) -> Optional[DistDesc]:
        """Check the planner-declared dist against the derivation.

        A declared ``arbitrary`` is accepted as a sound weakening of any
        derivation (the planners declare gathered/inline results that
        way) — except on Redistribute/Broadcast Motions, whose output
        distribution IS their semantics.  The derivation wins for
        downstream checks either way.
        """
        declared = node.dist
        if declared is None or derived is None:
            return derived
        strict = node.kind in ("Redistribute Motion", "Broadcast Motion")
        if _same_dist(declared, derived):
            return derived
        if not strict and declared.kind == "arbitrary":
            return derived
        self.emit(
            "PKB212",
            path,
            f"{node.kind}: declares {_describe(declared)} but the "
            f"derivation gives {_describe(derived)}",
            kind=node.kind,
            declared=_describe(declared),
            derived=_describe(derived),
        )
        return derived

    # -- derivation per kind -------------------------------------------------

    def _derive(
        self,
        node: PhysicalNode,
        path: str,
        children: List[Optional[DistDesc]],
    ) -> Optional[DistDesc]:
        kind = node.kind
        if kind == "Seq Scan":
            return self._derive_scan(node)
        if kind == "Values":
            return _SINGLETON
        if kind in ("Filter", "Distinct"):
            if kind == "Distinct" and self.nseg > 1:
                if children[0] is not None and children[0].kind == "arbitrary":
                    self.emit(
                        "PKB211",
                        path,
                        "Distinct: input is distributed arbitrarily — "
                        "duplicates of a row may live on different "
                        "segments; redistribute on the row columns first",
                        kind=kind,
                    )
            return children[0]
        if kind == "Project":
            # renames can remap hash columns; the planner's declaration
            # is the only static source of truth for them
            if node.dist is not None:
                return node.dist
            child = children[0]
            if child is not None and child.kind == "hash":
                return None
            return child
        if kind == "Hash Join":
            return self._derive_join(node, path, children, anti=False)
        if kind == "Hash Anti Join":
            return self._derive_join(node, path, children, anti=True)
        if kind == "HashAggregate":
            return self._derive_aggregate(node, path, children[0])
        if kind == "Append":
            return self._derive_append(children)
        if kind in ("Sort", "Limit"):
            if self.nseg > 1 and children[0] is not None:
                if children[0] is not _SINGLETON and children[0].kind != "singleton":
                    self.emit(
                        "PKB211",
                        path,
                        f"{kind}: input is {_describe(children[0])} but a "
                        "global ordering needs all rows on one segment — "
                        "gather first",
                        kind=kind,
                        input=_describe(children[0]),
                    )
            return _SINGLETON
        if kind == "Redistribute Motion":
            return self._derive_redistribute(node, path, children[0])
        if kind == "Broadcast Motion":
            if self.nseg > 1 and children[0] is not None:
                if children[0].kind == "replicated":
                    self.emit(
                        "PKB210",
                        path,
                        "Broadcast Motion: input is already replicated",
                        kind=kind,
                    )
            return DistDesc.replicated()
        if kind == "Gather Motion":
            # 'to seg0' gathers within the cluster; an empty detail is
            # the master gather emitted by query(), which always moves
            # rows off the segments and is never redundant
            if (
                self.nseg > 1
                and node.detail == "to seg0"
                and children[0] is not None
                and children[0].kind == "singleton"
            ):
                self.emit(
                    "PKB210",
                    path,
                    "Gather Motion: input already lives on a single segment",
                    kind=kind,
                )
            return _SINGLETON
        raise AssertionError(f"unhandled kind {kind!r}")  # pragma: no cover

    def _derive_scan(self, node: PhysicalNode) -> Optional[DistDesc]:
        if node.dist is not None:
            return node.dist
        if node.detail.startswith("on "):
            table = node.detail[3:].strip()
            return self.table_dists.get(table)
        return None

    def _parse_join_keys(
        self, node: PhysicalNode, path: str
    ) -> Optional[Tuple[List[str], List[str]]]:
        detail = node.detail
        if not detail.startswith("on "):
            self.emit(
                "PKB212",
                path,
                f"{node.kind}: unparsable join detail {detail!r} "
                "(expected 'on L = R AND ...')",
                kind=node.kind,
                detail=detail,
            )
            return None
        left_keys, right_keys = [], []
        for clause in detail[3:].split(" AND "):
            sides = clause.split(" = ")
            if len(sides) != 2 or not sides[0].strip() or not sides[1].strip():
                self.emit(
                    "PKB212",
                    path,
                    f"{node.kind}: unparsable join clause {clause!r}",
                    kind=node.kind,
                    detail=detail,
                )
                return None
            left_keys.append(sides[0].strip())
            right_keys.append(sides[1].strip())
        return left_keys, right_keys

    def _derive_join(
        self,
        node: PhysicalNode,
        path: str,
        children: List[Optional[DistDesc]],
        anti: bool,
    ) -> Optional[DistDesc]:
        keys = self._parse_join_keys(node, path)
        left, right = children
        if keys is None or left is None or right is None:
            return node.dist
        left_keys, right_keys = keys
        if self.nseg <= 1:
            return left

        left_kind, right_kind = left.kind, right.kind
        # replicated inputs join locally against anything — except the
        # preserved side of an anti-join, where a replicated left would
        # test each copy against only one segment's worth of right rows
        if right_kind == "replicated":
            if left_kind == "replicated":
                return DistDesc.arbitrary()
            return left
        if not anti and left_kind == "replicated":
            return right
        if left_kind == "singleton" and right_kind == "singleton":
            return _SINGLETON
        if not anti and left_kind == "singleton" and right_kind == "replicated":
            return _SINGLETON
        left_perm = _perm(left, left_keys)
        right_perm = _perm(right, right_keys)
        if left_perm is not None and left_perm == right_perm:
            # collocated: the output's layout is equally described by
            # either side's hash columns (equal join keys, same
            # segments) — keep whichever spelling the planner declared
            declared = node.dist
            if declared is not None and (
                _same_dist(declared, left) or _same_dist(declared, right)
            ):
                return declared
            return left
        self.emit(
            "PKB209",
            path,
            f"{node.kind} {node.detail}: inputs are {_describe(left)} and "
            f"{_describe(right)} — neither collocated on the join keys, "
            "replicated, nor singleton; a motion is missing",
            kind=node.kind,
            left=_describe(left),
            right=_describe(right),
            left_keys=left_keys,
            right_keys=right_keys,
        )
        return node.dist

    def _parse_group_keys(
        self, node: PhysicalNode, path: str
    ) -> Optional[List[str]]:
        detail = node.detail
        if (
            not detail.startswith("group by (")
            or not detail.endswith(")")
        ):
            self.emit(
                "PKB212",
                path,
                f"HashAggregate: unparsable detail {detail!r} "
                "(expected 'group by (...)')",
                kind=node.kind,
                detail=detail,
            )
            return None
        inner = detail[len("group by ("):-1].strip()
        if not inner:
            return []
        return [part.strip() for part in inner.split(",")]

    def _derive_aggregate(
        self, node: PhysicalNode, path: str, child: Optional[DistDesc]
    ) -> Optional[DistDesc]:
        group = self._parse_group_keys(node, path)
        if group is None:
            return node.dist
        if not group:
            # global aggregate: one row, computed where all rows are
            if self.nseg > 1 and child is not None and child.kind != "singleton":
                self.emit(
                    "PKB211",
                    path,
                    f"HashAggregate (global): input is {_describe(child)} "
                    "but a global aggregate needs all rows on one "
                    "segment — gather first",
                    kind=node.kind,
                    input=_describe(child),
                )
            return _SINGLETON
        if self.nseg > 1 and child is not None and child.kind != "singleton":
            suffixes = {_suffix(key) for key in group} | set(group)
            grouped_ok = (
                child.kind == "hash"
                and child.columns is not None
                and all(
                    column in suffixes or _suffix(column) in suffixes
                    for column in child.columns
                )
            )
            if not grouped_ok:
                self.emit(
                    "PKB211",
                    path,
                    f"HashAggregate {node.detail}: input is "
                    f"{_describe(child)} but rows of one group must share "
                    "a segment — hash within the group keys",
                    kind=node.kind,
                    input=_describe(child),
                    group_by=group,
                )
        return DistDesc.hash_on(group)

    def _derive_append(
        self, children: List[Optional[DistDesc]]
    ) -> Optional[DistDesc]:
        if any(child is None for child in children):
            return None
        dists = set()
        for child in children:
            assert child is not None
            if child.kind == "replicated":
                dists.add(DistDesc.arbitrary())
            else:
                dists.add(child)
        return dists.pop() if len(dists) == 1 else DistDesc.arbitrary()

    def _derive_redistribute(
        self, node: PhysicalNode, path: str, child: Optional[DistDesc]
    ) -> Optional[DistDesc]:
        detail = node.detail
        if not detail.startswith("on (") or not detail.endswith(")"):
            self.emit(
                "PKB212",
                path,
                f"Redistribute Motion: unparsable detail {detail!r} "
                "(expected 'on (col, ...)')",
                kind=node.kind,
                detail=detail,
            )
            return node.dist
        keys = [
            part.strip()
            for part in detail[len("on ("):-1].split(",")
            if part.strip()
        ]
        target = DistDesc.hash_on(keys)
        if self.nseg > 1 and child is not None and _same_dist(child, target):
            self.emit(
                "PKB210",
                path,
                f"Redistribute Motion {detail}: input is already "
                f"{_describe(child)}",
                kind=node.kind,
                keys=keys,
            )
        return target


def verify_physical_plan(
    plan: PhysicalNode,
    num_segments: int,
    table_dists: Optional[Mapping[str, DistDesc]] = None,
    name: str = "physical plan",
) -> VerificationReport:
    """Statically verify an MPP physical plan tree.

    ``table_dists`` optionally maps a stored table's name to its
    :class:`DistDesc` (unqualified columns are fine — join keys are
    suffix-matched), used for scans the planner did not annotate.
    Distribution checks need ``num_segments > 1``; structural checks
    (operator kinds, child counts, detail syntax) always run.  The plan
    is never mutated.
    """
    checker = _PhysicalChecker(num_segments, table_dists)
    checker.check(plan, "root")
    return VerificationReport(plan_name=name, findings=tuple(checker.findings))
