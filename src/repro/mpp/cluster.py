"""The shared-nothing MPP database simulator (the Greenplum stand-in).

An :class:`MPPDatabase` holds hash/replicated/randomly distributed tables
across N segments, executes the same logical plans as the single-node
engine, and inserts *motion* operators (redistribute/broadcast/gather)
whenever a join, aggregate, or distinct is not collocated.  Motion rows
are charged shipping costs on the receiving segments; the simulated
elapsed time of a statement is the per-statement overhead plus the
*maximum* per-segment work — i.e. ideal parallel execution, which is what
the paper's Greenplum numbers approximate.

Motion decisions are made adaptively from actual intermediate sizes,
standing in for Greenplum's statistics-driven planner.  Every executed
statement records its physical plan (:mod:`repro.mpp.plannodes`) for
EXPLAIN ANALYZE output reproducing the paper's Figure 4.

Execution modes
---------------

The planner (:class:`_MPPExecutor`) is split from the row-level work it
schedules.  An *ops* object executes each physical operator across
segments and comes in two flavors:

* :class:`_SerialOps` (default, ``num_workers=0``) runs every segment's
  share in the master process — deterministic, dependency-free, and what
  tier-1 tests exercise.
* ``PooledOps`` (:mod:`repro.mpp.workers`, ``num_workers>0``) pushes each
  operator down into a persistent pool of worker processes, one command
  per operator, with motions exchanged worker-to-worker over
  ``multiprocessing`` queues.  Both modes share the row loops in
  :mod:`repro.mpp.rowops`, so they produce bit-identical tables and cost
  clocks.

The master's table shards stay authoritative in both modes: DML is
applied on the master and mirrored into the workers, while queries run
in the workers and only result rows travel back.  If the pool dies
mid-statement the database *degrades* — it re-runs the statement on the
serial executor over its own intact shards and stays serial from then
on.
"""

from __future__ import annotations

import weakref
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple, TypeVar

from ..relational.columnar import resolve_executor
from ..relational.cost import CostClock
from ..relational.executor import Result
from ..relational.expr import Expr, resolve_column
from ..relational.plan import (
    Aggregate,
    AntiJoin,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    PlanNode,
    Project,
    Scan,
    Sort,
    UnionAll,
    Values,
    scans_of,
    walk,
)
from ..relational.schema import TableSchema
from ..relational.table import Table
from ..relational.types import ExecutionError, Row, ensure
from ..relational.verify import verify_plan, verify_plans_enabled
from . import rowops
from .distribution import (
    DistributionPolicy,
    HashDistribution,
    RandomDistribution,
    ReplicatedDistribution,
    partition_rows,
)
from .plannodes import DistDesc, PhysicalNode
from .static_planner import (
    FALLBACK_BROADCAST_LEFT,
    FALLBACK_BROADCAST_RIGHT,
    StaticPlan,
    StaticPlanner,
    choose_fallback_motion,
    collect_mpp_statistics,
    join_detail,
    project_dist,
    qualified_set,
    subset_perm,
)

_T = TypeVar("_T")

#: Supported planner modes: "adaptive" decides motions from actual
#: intermediate sizes; "static" decides them from catalog statistics
#: before execution (rows are identical either way — only the cost-based
#: broadcast-vs-redistribute fallback is data-dependent).
PLAN_MODES = ("adaptive", "static")


class MPPTable:
    """A table partitioned (or replicated) across segments."""

    def __init__(
        self,
        table_schema: TableSchema,
        policy: DistributionPolicy,
        nseg: int,
    ) -> None:
        self.schema = table_schema
        self.policy = policy
        self.parts: List[Table] = [Table(table_schema) for _ in range(nseg)]
        if policy.key_columns is not None:
            self.key_positions = table_schema.positions(policy.key_columns)
            if table_schema.unique_key is not None:
                ensure(
                    set(policy.key_columns) <= set(table_schema.unique_key),
                    ExecutionError,
                    f"distribution key of {table_schema.name!r} must be a "
                    "subset of its unique key for per-segment dedup to be "
                    "globally correct",
                )
        else:
            self.key_positions = ()

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        if isinstance(self.policy, ReplicatedDistribution):
            return len(self.parts[0])
        return sum(len(part) for part in self.parts)

    def all_rows(self) -> List[Row]:
        if isinstance(self.policy, ReplicatedDistribution):
            return list(self.parts[0].rows)
        rows: List[Row] = []
        for part in self.parts:
            rows.extend(part.rows)
        return rows


class Shards:
    """A distributed intermediate result held in the master process."""

    __slots__ = ("columns", "parts", "dist")

    def __init__(
        self, columns: List[str], parts: List[List[Row]], dist: DistDesc
    ) -> None:
        self.columns = columns
        self.parts = parts
        self.dist = dist

    @property
    def total_rows(self) -> int:
        if self.dist.kind == "replicated":
            return len(self.parts[0])
        return sum(len(part) for part in self.parts)

    def gathered(self) -> List[Row]:
        if self.dist.kind == "replicated":
            return list(self.parts[0])
        rows: List[Row] = []
        for part in self.parts:
            rows.extend(part)
        return rows


class MPPDatabase:
    """A simulated shared-nothing MPP cluster.

    With ``num_workers=0`` (the default) all segments execute serially
    in-process.  With ``num_workers=N`` a persistent pool of N worker
    processes is spawned, segments are assigned round-robin to workers,
    and every query plan runs inside the pool.
    """

    def __init__(
        self,
        nseg: int = 8,
        name: str = "mpp",
        num_workers: int = 0,
        worker_timeout: float = 60.0,
        plan_mode: str = "adaptive",
        verify_plans: Optional[bool] = None,
        executor: Optional[str] = None,
    ) -> None:
        ensure(nseg >= 1, ExecutionError, "need at least one segment")
        ensure(
            plan_mode in PLAN_MODES,
            ExecutionError,
            f"plan_mode must be one of {PLAN_MODES}, got {plan_mode!r}",
        )
        self.name = name
        self.nseg = nseg
        self.plan_mode = plan_mode
        #: relational engine used for segment row operators ("columnar"
        #: or "rows"); worker processes resolve PROBKB_EXECUTOR themselves
        self.executor_engine = resolve_executor(executor)
        #: the static planner's verdict on the most recent statement
        #: (``plan_mode="static"`` only)
        self.last_static_plan: Optional[StaticPlan] = None
        self.tables: Dict[str, MPPTable] = {}
        self.segment_clocks = [CostClock() for _ in range(nseg)]
        self.master_clock = CostClock()
        #: simulated elapsed seconds (parallel time), accumulated per query
        self.elapsed_seconds = 0.0
        self.last_plan: Optional[PhysicalNode] = None
        self._matview_sources: Dict[str, str] = {}
        #: mirror tables kept in sync with a source table's DML —
        #: how redistributed matviews stay fresh incrementally
        self._mirrors: Dict[str, List[str]] = {}
        #: debug gate: statically verify every distinct plan once before
        #: it executes (None defers to the PROBKB_VERIFY_PLANS env var)
        self.verify_plans = verify_plans_enabled(verify_plans)
        self._verified_plans: "weakref.WeakSet[PlanNode]" = weakref.WeakSet()
        self.pool = None
        self.num_workers = 0
        self.degraded_reason: Optional[str] = None
        if num_workers:
            from .workers import WorkerPool

            self.pool = WorkerPool(
                nseg, num_workers, reply_timeout=worker_timeout
            )
            self.num_workers = self.pool.num_workers

    # ------------------------------------------------------------------ pool

    @property
    def degraded(self) -> bool:
        """True if a worker pool was lost and the database fell back to
        the serial executor."""
        return self.degraded_reason is not None

    def executor_info(self) -> Dict[str, object]:
        return {
            "mode": "multiprocess" if self.pool is not None else "serial",
            "segments": self.nseg,
            "workers": self.pool.num_workers if self.pool is not None else 0,
            "degraded": self.degraded,
            "plan": self.plan_mode,
            "engine": self.executor_engine,
        }

    def close(self) -> None:
        """Shut down the worker pool (no-op in serial mode)."""
        pool, self.pool = self.pool, None
        if pool is not None:
            pool.close()

    def __enter__(self) -> "MPPDatabase":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _degrade(self, error: BaseException) -> None:
        """Lose the pool: record why, kill it, continue serially."""
        import warnings

        pool, self.pool = self.pool, None
        self.degraded_reason = str(error) or type(error).__name__
        if pool is not None:
            pool.close(force=True)
        warnings.warn(
            "MPP worker pool lost "
            f"({self.degraded_reason}); continuing with the serial executor",
            RuntimeWarning,
            stacklevel=3,
        )

    def _run_plan(self, plan: PlanNode) -> Tuple[Shards, PhysicalNode]:
        """Execute a logical plan, returning master-local shards and the
        recorded physical plan.

        In pooled mode the plan runs inside the workers and only the
        result rows come back.  Plan execution never mutates stored
        tables, so if the pool dies mid-plan the statement simply
        retries on the serial executor over the master's authoritative
        shards (at worst the cost clocks double-count the aborted
        attempt's operators)."""
        static_choices = self._plan_statically(plan)
        verify = self.verify_plans and plan not in self._verified_plans
        if verify:
            # pre-execution: the logical tree, and in static mode the
            # statically planned physical tree (motions included)
            verify_plan(plan, tables=self.tables, name="mpp logical plan") \
                .raise_if_errors()
            if self.plan_mode == "static" and self.last_static_plan is not None:
                self._verify_physical(
                    self.last_static_plan.root, "mpp static plan"
                )
        shards, node = self._execute_plan(plan, static_choices)
        if verify:
            # post-execution: the physical trace the adaptive executor
            # actually recorded (motions chosen from real sizes)
            self._verify_physical(node, "mpp physical plan")
            self._verified_plans.add(plan)
        return shards, node

    def _verify_physical(self, root: PhysicalNode, name: str) -> None:
        from .verify import verify_physical_plan

        table_dists = {
            table_name: self._policy_dist(table.policy)
            for table_name, table in self.tables.items()
        }
        verify_physical_plan(
            root, self.nseg, table_dists=table_dists, name=name
        ).raise_if_errors()

    @staticmethod
    def _policy_dist(policy: DistributionPolicy) -> DistDesc:
        if isinstance(policy, ReplicatedDistribution):
            return DistDesc.replicated()
        if policy.key_columns is not None:
            return DistDesc.hash_on(policy.key_columns)
        return DistDesc.arbitrary()

    def _execute_plan(
        self, plan: PlanNode, static_choices: Optional[Dict[int, str]]
    ) -> Tuple[Shards, PhysicalNode]:
        if self.pool is not None:
            from .workers import PooledOps, WorkerCrashError

            ops = PooledOps(self)
            try:
                executor = _MPPExecutor(
                    self, ops=ops, static_choices=static_choices
                )
                shards, node = executor.exec_plan(plan)
                return ops.localize(shards), node
            except WorkerCrashError as error:
                self._degrade(error)
            finally:
                self._reset_pool()
        executor = _MPPExecutor(self, static_choices=static_choices)
        return executor.exec_plan(plan)

    def _plan_statically(self, plan: PlanNode) -> Optional[Dict[int, str]]:
        """In static mode, pre-decide the cost-based join motions from
        catalog statistics over the plan's stored tables (ANALYZE +
        planning, before any row is read)."""
        if self.plan_mode != "static":
            return None
        table_names = {scan.table_name for scan in scans_of(plan)}
        catalog = collect_mpp_statistics(self, table_names)
        static_plan = StaticPlanner(catalog, self.nseg).plan(plan)
        self.last_static_plan = static_plan
        return static_plan.fallback_choices

    def _reset_pool(self) -> None:
        """Free worker-side intermediates after a statement."""
        if self.pool is None:
            return
        from .workers import WorkerCrashError

        try:
            self.pool.reset_intermediates()
        except WorkerCrashError as error:
            self._degrade(error)

    def _pool_send(self, command: Tuple) -> None:
        """Mirror one DML effect into every worker (no-op without a pool)."""
        if self.pool is None:
            return
        from .workers import WorkerCrashError

        try:
            self.pool.dispatch(command)
        except WorkerCrashError as error:
            self._degrade(error)

    def _pool_send_shards(
        self,
        op: str,
        name: str,
        shards: List[List[Row]],
        truncate_first: Optional[bool] = None,
    ) -> None:
        """Ship per-segment row lists to the workers owning them."""
        if self.pool is None:
            return
        from .workers import WorkerCrashError

        def build(worker_id: int, segments: List[int]) -> Tuple:
            payload = {
                seg: shards[seg]
                for seg in segments
                if shards[seg] or truncate_first
            }
            if truncate_first is None:
                return (op, name, payload)
            return (op, name, payload, truncate_first)

        try:
            self.pool.dispatch(per_worker=build)
        except WorkerCrashError as error:
            self._degrade(error)

    # ------------------------------------------------------------------ DDL

    def create_table(
        self,
        table_schema: TableSchema,
        policy: Optional[DistributionPolicy] = None,
        replace: bool = False,
    ) -> MPPTable:
        if table_schema.name in self.tables and not replace:
            raise ExecutionError(f"table {table_schema.name!r} already exists")
        if policy is None:
            policy = RandomDistribution()
        table = MPPTable(table_schema, policy, self.nseg)
        self.tables[table_schema.name] = table
        self._pool_send(("create_table", table_schema))
        return table

    def drop_table(self, name: str) -> None:
        self.tables.pop(name, None)
        self._matview_sources.pop(name, None)
        self._pool_send(("drop_table", name))

    def table(self, name: str) -> MPPTable:
        try:
            return self.tables[name]
        except KeyError:
            raise ExecutionError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self.tables

    def create_redistributed_matview(
        self,
        name: str,
        source_table: str,
        key_columns: Sequence[str],
    ) -> MPPTable:
        """A redistributed materialized view of a table (Section 4.4).

        Same rows as ``source_table`` but hash-distributed on
        ``key_columns`` so joins on those columns are collocated.
        """
        source = self.table(source_table)
        view_schema = TableSchema(
            name, source.schema.columns, unique_key=source.schema.unique_key
        )
        view = self.create_table(
            view_schema, HashDistribution(key_columns), replace=True
        )
        self._matview_sources[name] = source_table
        self.refresh_matview(name)
        return view

    def refresh_matview(self, name: str) -> None:
        source_name = self._matview_sources.get(name)
        ensure(source_name is not None, ExecutionError, f"{name!r} is not a matview")
        view = self.table(name)
        rows = self.table(source_name).all_rows()  # type: ignore[arg-type]
        for part in view.parts:
            part.truncate()
        self._pool_send(("truncate", name))
        self._timed_statement(
            lambda: self._load_partitioned(view, rows, charge_ship=True)
        )

    def refresh_all_matviews(self) -> None:
        """Algorithm 1's ``redistribute(TΠ)`` step."""
        for name in list(self._matview_sources):
            self.refresh_matview(name)

    @property
    def matviews(self) -> List[str]:
        return list(self._matview_sources)

    # -- mirrors (incremental matview maintenance) --------------------------

    def add_mirror(self, source_table: str, mirror_table: str) -> None:
        """Keep ``mirror_table`` synchronized with DML on ``source_table``
        (each mirror has its own distribution — the redistributed
        materialized views of Section 4.4)."""
        self.table(source_table)
        self.table(mirror_table)
        self._mirrors.setdefault(source_table, []).append(mirror_table)

    def _mirror_insert(self, source_table: str, rows: Sequence[Row]) -> None:
        for mirror_name in self._mirrors.get(source_table, ()):
            mirror = self.table(mirror_name)
            shards = partition_rows(rows, mirror.policy, mirror.key_positions, self.nseg)
            for seg, shard in enumerate(shards):
                stored = mirror.parts[seg].insert(shard)
                clock = self.segment_clocks[seg]
                clock.rows_shipped += len(shard)
                clock.rows_inserted += stored
            self._pool_send_shards("insert_shards", mirror_name, shards)

    def _mirror_delete(
        self, source_table: str, column_names: Sequence[str], keys: Set[Row]
    ) -> None:
        for mirror_name in self._mirrors.get(source_table, ()):
            mirror = self.table(mirror_name)
            for seg, part in enumerate(mirror.parts):
                self.segment_clocks[seg].rows_broadcast += len(keys)
                part.delete_in(column_names, keys)
            self._pool_send(
                ("delete_keys", mirror_name, tuple(column_names), list(keys))
            )

    # ------------------------------------------------------------------ DML

    def bulkload(self, table_name: str, rows: Sequence[Row]) -> int:
        """COPY-style load: one statement, rows hashed to their segments."""
        table = self.table(table_name)
        row_list = list(rows)

        def work() -> int:
            stored = self._load_partitioned(table, row_list, charge_ship=False)
            self._mirror_insert(table_name, row_list)
            return stored

        return self._timed_statement(work)

    insert_rows = bulkload

    def insert_from(self, table_name: str, plan: PlanNode) -> int:
        """INSERT INTO table SELECT ...: result redistributed to the
        target's distribution, deduplicated per segment."""
        table = self.table(table_name)

        def work() -> int:
            shards, node = self._run_plan(plan)
            self.last_plan = node
            rows = shards.gathered() if shards.dist.kind == "replicated" else None
            if rows is not None:
                stored = self._load_partitioned(table, rows, charge_ship=True)
                self._mirror_insert(table_name, rows)
                return stored
            inserted = 0
            # ship every row to its home segment, charging receivers
            incoming: List[List[Row]] = [[] for _ in range(self.nseg)]
            for seg, part in enumerate(shards.parts):
                for row in part:
                    target = self._segment_for(table, row)
                    if target != seg:
                        self.segment_clocks[target].rows_shipped += 1
                    incoming[target].append(row)
            for seg, part in enumerate(incoming):
                stored = table.parts[seg].insert(part)
                self.segment_clocks[seg].rows_inserted += stored
                inserted += stored
            self._pool_send_shards("insert_shards", table_name, incoming)
            self._mirror_insert(
                table_name, [row for part in incoming for row in part]
            )
            return inserted

        return self._timed_statement(work)

    def insert_from_with_ids(
        self,
        table_name: str,
        plan: PlanNode,
        next_id: int,
        pad_nulls: int = 0,
    ) -> Tuple[int, int]:
        """INSERT ... SELECT with a leading sequence column, fully
        distributed: each segment stamps ids from its slice of the
        sequence (only per-segment row *counts* travel to the master),
        then rows ship to their home segments.  Returns (inserted,
        next sequence value)."""
        table = self.table(table_name)
        padding: Row = (None,) * pad_nulls

        def work() -> Tuple[int, int]:
            shards, node = self._run_plan(plan)
            self.last_plan = node
            source_parts = (
                [shards.gathered()]
                if shards.dist.kind == "replicated"
                else shards.parts
            )
            sequence = next_id
            incoming: List[List[Row]] = [[] for _ in range(self.nseg)]
            for seg, part in enumerate(source_parts):
                for row in part:
                    full_row = (sequence,) + row + padding
                    sequence += 1
                    target = self._segment_for(table, full_row)
                    if target != seg:
                        self.segment_clocks[target].rows_shipped += 1
                    incoming[target].append(full_row)
            inserted = 0
            for seg, part in enumerate(incoming):
                stored = table.parts[seg].insert(part)
                self.segment_clocks[seg].rows_inserted += stored
                inserted += stored
            self._pool_send_shards("insert_shards", table_name, incoming)
            self._mirror_insert(
                table_name, [row for part in incoming for row in part]
            )
            return inserted, sequence

        return self._timed_statement(work)

    def delete_in(
        self,
        table_name: str,
        column_names: Sequence[str],
        key_plan: PlanNode,
    ) -> int:
        """DELETE FROM table WHERE (cols) IN (subplan): the key set is
        gathered on the master and broadcast to all segments."""
        table = self.table(table_name)

        def work() -> int:
            shards, node = self._run_plan(key_plan)
            self.last_plan = node
            keys: Set[Row] = set(shards.gathered())
            self.master_clock.rows_shipped += len(keys)
            removed = 0
            for seg, part in enumerate(table.parts):
                self.segment_clocks[seg].rows_broadcast += len(keys)
                removed += part.delete_in(column_names, keys)
            self._pool_send(
                ("delete_keys", table_name, tuple(column_names), list(keys))
            )
            self._mirror_delete(table_name, column_names, keys)
            return removed

        return self._timed_statement(work)

    def truncate(self, table_name: str) -> None:
        table = self.table(table_name)
        for part in table.parts:
            part.truncate()
        self._pool_send(("truncate", table_name))

    # ------------------------------------------------------------------ query

    def query(self, plan: PlanNode) -> Result:
        """Execute a logical plan; the result is gathered on the master."""

        def work() -> Result:
            shards, node = self._run_plan(plan)
            rows = shards.gathered()
            self.master_clock.rows_shipped += len(rows)
            gather = PhysicalNode("Gather Motion", rows=len(rows))
            gather.dist = DistDesc.arbitrary()
            gather.children.append(node)
            self.last_plan = gather
            return Result(shards.columns, rows)

        return self._timed_statement(work)

    def execute_sql(self, sql: str) -> Result:
        """Parse and execute a SELECT statement on the cluster."""
        from ..relational.sqlparse import parse_sql

        return self.query(parse_sql(sql))

    def explain_last(self) -> str:
        """EXPLAIN ANALYZE text of the most recent statement's plan."""
        ensure(self.last_plan is not None, ExecutionError, "no plan recorded")
        return self.last_plan.explain()  # type: ignore[union-attr]

    # ------------------------------------------------------------------ cost

    @property
    def work_clock(self) -> CostClock:
        """Total work across all segments plus the master."""
        merged = CostClock()
        for clock in self.segment_clocks:
            merged.merge(clock)
        merged.merge(self.master_clock)
        return merged

    # ------------------------------------------------------------------ internals

    def _segment_for(self, table: MPPTable, row: Row) -> int:
        return table.policy.segment_of(row, table.key_positions, self.nseg)

    def _load_partitioned(
        self, table: MPPTable, rows: List[Row], charge_ship: bool
    ) -> int:
        shards = partition_rows(rows, table.policy, table.key_positions, self.nseg)
        replicated = isinstance(table.policy, ReplicatedDistribution)
        if replicated:
            for part in table.parts:
                part.truncate()
        inserted = 0
        for seg, shard in enumerate(shards):
            stored = table.parts[seg].insert(shard)
            clock = self.segment_clocks[seg]
            clock.rows_inserted += stored
            if charge_ship:
                clock.rows_shipped += len(shard)
            inserted += stored
        self._pool_send_shards(
            "load_shards", table.name, shards, truncate_first=replicated
        )
        if replicated:
            return len(table.parts[0])
        return inserted

    def _timed_statement(self, work: Callable[[], _T]) -> _T:
        """Run one statement, updating the simulated parallel clock."""
        seg_before = [clock.seconds for clock in self.segment_clocks]
        master_before = self.master_clock.seconds
        self.master_clock.charge_query()
        outcome = work()
        seg_delta = max(
            clock.seconds - before
            for clock, before in zip(self.segment_clocks, seg_before)
        )
        master_delta = self.master_clock.seconds - master_before
        self.elapsed_seconds += seg_delta + master_delta
        return outcome


class _SerialOps:
    """Row-level operator execution, all segments in the master process.

    Every method takes/returns :class:`Shards`; the row loops themselves
    live in :mod:`repro.mpp.rowops`, shared with the worker processes.
    """

    remote = False

    def __init__(self, cluster: MPPDatabase) -> None:
        self.cluster = cluster
        self.nseg = cluster.nseg
        self.clocks = cluster.segment_clocks
        self.engine = cluster.executor_engine

    def scan(self, table: MPPTable, columns: List[str], dist: DistDesc) -> Shards:
        parts = [
            rowops.scan_rows(part.rows, self.clocks[seg])
            for seg, part in enumerate(table.parts)
        ]
        return Shards(columns, parts, dist)

    def values(self, rows: List[Row], columns: List[str]) -> Shards:
        parts: List[List[Row]] = [[] for _ in range(self.nseg)]
        parts[0] = list(rows)
        return Shards(columns, parts, DistDesc.arbitrary())

    def filter(self, child: Shards, predicate: Expr) -> Shards:
        bound = predicate.bind(child.columns)
        parts = [
            rowops.filter_rows(part, bound, self.clocks[seg])
            for seg, part in enumerate(child.parts)
        ]
        return Shards(child.columns, parts, child.dist)

    def project(
        self,
        child: Shards,
        outputs: Sequence[Tuple[Expr, str]],
        out_columns: List[str],
        dist: DistDesc,
    ) -> Shards:
        evaluators = [expr.bind(child.columns) for expr, _ in outputs]
        parts = [
            rowops.project_rows(part, evaluators, self.clocks[seg])
            for seg, part in enumerate(child.parts)
        ]
        return Shards(out_columns, parts, dist)

    def join(
        self,
        left: Shards,
        right: Shards,
        lpos: List[int],
        rpos: List[int],
        residual: Optional[Expr],
        out_columns: List[str],
        out_dist: DistDesc,
    ) -> Shards:
        bound = residual.bind(out_columns) if residual is not None else None
        both_replicated = (
            left.dist.kind == "replicated" and right.dist.kind == "replicated"
        )
        parts = []
        for seg in range(self.nseg):
            if both_replicated and seg != 0:
                # both replicated: compute once on segment 0
                parts.append([])
                continue
            left_part = (
                left.parts[0] if left.dist.kind == "replicated" else left.parts[seg]
            )
            right_part = (
                right.parts[0]
                if right.dist.kind == "replicated"
                else right.parts[seg]
            )
            parts.append(
                rowops.hash_join_rows(
                    left_part, right_part, lpos, rpos, bound,
                    self.clocks[seg], engine=self.engine,
                )
            )
        return Shards(out_columns, parts, out_dist)

    def anti_join(
        self,
        left: Shards,
        right: Shards,
        lpos: List[int],
        rpos: List[int],
        out_dist: DistDesc,
    ) -> Shards:
        parts = []
        for seg in range(self.nseg):
            if left.dist.kind == "replicated" and seg != 0:
                parts.append([])
                continue
            left_part = (
                left.parts[0] if left.dist.kind == "replicated" else left.parts[seg]
            )
            right_part = (
                right.parts[0]
                if right.dist.kind == "replicated"
                else right.parts[seg]
            )
            parts.append(
                rowops.anti_join_rows(
                    left_part, right_part, lpos, rpos,
                    self.clocks[seg], engine=self.engine,
                )
            )
        return Shards(left.columns, parts, out_dist)

    def distinct(self, child: Shards) -> Shards:
        parts = [
            rowops.distinct_rows(part, self.clocks[seg], engine=self.engine)
            for seg, part in enumerate(child.parts)
        ]
        return Shards(child.columns, parts, child.dist)

    def aggregate(
        self,
        child: Shards,
        group_pos: List[int],
        aggregates: Sequence[Tuple[str, Optional[str], str]],
        agg_pos: Sequence[Optional[int]],
        having: Optional[Expr],
        out_columns: List[str],
        global_agg: bool,
        out_dist: DistDesc,
    ) -> Shards:
        bound = having.bind(out_columns) if having is not None else None
        parts = []
        for seg, part in enumerate(child.parts):
            if global_agg and seg != 0:
                parts.append([])
                continue
            parts.append(
                rowops.aggregate_rows(
                    part, group_pos, aggregates, agg_pos, bound,
                    global_agg, self.clocks[seg],
                )
            )
        return Shards(out_columns, parts, out_dist)

    def union(
        self, children: List[Shards], out_columns: List[str], dist: DistDesc
    ) -> Shards:
        parts: List[List[Row]] = [[] for _ in range(self.nseg)]
        for shards in children:
            if shards.dist.kind == "replicated":
                parts[0].extend(shards.parts[0])
            else:
                for seg, part in enumerate(shards.parts):
                    parts[seg].extend(part)
        # concatenation emits every row once, mirroring the single-node
        # executor's UnionAll charge
        for seg, part in enumerate(parts):
            self.clocks[seg].rows_output += len(part)
        return Shards(out_columns, parts, dist)

    def redistribute(
        self, shards: Shards, positions: List[int], keys: List[str]
    ) -> Shards:
        parts: List[List[Row]] = [[] for _ in range(self.nseg)]
        source_parts = (
            [shards.parts[0]] if shards.dist.kind == "replicated" else shards.parts
        )
        for seg, part in enumerate(source_parts):
            pieces = rowops.partition_by_hash(part, positions, self.nseg)
            for target, piece in enumerate(pieces):
                if target != seg:
                    self.clocks[target].rows_shipped += len(piece)
                parts[target].extend(piece)
        return Shards(shards.columns, parts, DistDesc.hash_on(keys))

    def broadcast(self, shards: Shards) -> Shards:
        all_rows = shards.gathered()
        for seg in range(self.nseg):
            local = (
                len(shards.parts[seg])
                if shards.dist.kind != "replicated"
                else len(all_rows)
            )
            self.clocks[seg].rows_broadcast += len(all_rows) - local
        parts = [list(all_rows) for _ in range(self.nseg)]
        return Shards(shards.columns, parts, DistDesc.replicated())

    def gather_first(self, shards: Shards) -> Shards:
        rows = shards.gathered()
        if shards.dist.kind != "replicated":
            self.clocks[0].rows_shipped += len(rows) - len(shards.parts[0])
        parts: List[List[Row]] = [[] for _ in range(self.nseg)]
        parts[0] = rows
        return Shards(shards.columns, parts, DistDesc.arbitrary())

    def sort(self, child: Shards, positions: Sequence[Tuple[int, bool]]) -> Shards:
        ordered = rowops.sort_rows(
            child.parts[0], positions, self.clocks[0], engine=self.engine
        )
        parts: List[List[Row]] = [[] for _ in range(self.nseg)]
        parts[0] = ordered
        return Shards(child.columns, parts, DistDesc.arbitrary())

    def limit(self, child: Shards, limit: int) -> Shards:
        parts: List[List[Row]] = [[] for _ in range(self.nseg)]
        parts[0] = list(child.parts[0][:limit])
        return Shards(child.columns, parts, DistDesc.arbitrary())

    def localize(self, shards: Shards) -> Shards:
        return shards


class _MPPExecutor:
    """Adaptive planner over distributed shards.

    Decides collocation/motions and records the physical plan; the
    actual per-segment row work is delegated to an *ops* object —
    :class:`_SerialOps` in-process, or ``PooledOps`` pushing operators
    into the worker pool."""

    def __init__(
        self,
        cluster: MPPDatabase,
        ops: Optional[Any] = None,
        static_choices: Optional[Dict[int, str]] = None,
    ) -> None:
        self.cluster = cluster
        self.nseg = cluster.nseg
        self.clocks = cluster.segment_clocks
        self.ops = ops if ops is not None else _SerialOps(cluster)
        #: pre-decided broadcast-vs-redistribute choices per HashJoin
        #: logical node (``plan_mode="static"``); None = decide adaptively
        self.static_choices = static_choices

    # -- entry ---------------------------------------------------------------

    def exec_plan(self, plan: PlanNode) -> Tuple[Shards, PhysicalNode]:
        self._bind(plan)
        return self._exec(plan)

    def _bind(self, plan: PlanNode) -> None:
        for node in walk(plan):
            if isinstance(node, Scan):
                table = self.cluster.tables.get(node.table_name)
                if table is None:
                    raise ExecutionError(f"unknown table {node.table_name!r}")
                node.set_table_columns(table.schema.column_names)

    # -- timing helper ---------------------------------------------------------

    def _timed(self, node: PhysicalNode, work: Callable[[], Shards]) -> Shards:
        before = [clock.seconds for clock in self.clocks]
        shards = work()
        node.seconds = max(
            clock.seconds - b for clock, b in zip(self.clocks, before)
        )
        node.rows = shards.total_rows
        node.dist = shards.dist
        return shards

    # -- dispatch ----------------------------------------------------------------

    def _exec(self, plan: PlanNode) -> Tuple[Shards, PhysicalNode]:
        handler = {
            Scan: self._exec_scan,
            Values: self._exec_values,
            Filter: self._exec_filter,
            Project: self._exec_project,
            HashJoin: self._exec_join,
            AntiJoin: self._exec_anti_join,
            Distinct: self._exec_distinct,
            Aggregate: self._exec_aggregate,
            UnionAll: self._exec_union,
            Sort: self._exec_sort,
            Limit: self._exec_limit,
        }.get(type(plan))
        if handler is None:
            raise ExecutionError(f"unsupported MPP plan node {type(plan).__name__}")
        return handler(plan)

    # -- leaf nodes -----------------------------------------------------------

    def _exec_scan(self, plan: Scan) -> Tuple[Shards, PhysicalNode]:
        table = self.cluster.table(plan.table_name)
        columns = plan.output_columns
        if isinstance(table.policy, ReplicatedDistribution):
            dist = DistDesc.replicated()
        elif table.policy.key_columns is not None:
            dist = DistDesc.hash_on(
                f"{plan.alias}.{c}" for c in table.policy.key_columns
            )
        else:
            dist = DistDesc.arbitrary()
        node = PhysicalNode("Seq Scan", f"on {plan.table_name}")
        shards = self._timed(node, lambda: self.ops.scan(table, columns, dist))
        return shards, node

    def _exec_values(self, plan: Values) -> Tuple[Shards, PhysicalNode]:
        node = PhysicalNode("Values", rows=len(plan.rows))
        shards = self.ops.values(list(plan.rows), plan.output_columns)
        node.dist = shards.dist
        return shards, node

    # -- unary nodes ----------------------------------------------------------

    def _exec_filter(self, plan: Filter) -> Tuple[Shards, PhysicalNode]:
        child, child_node = self._exec(plan.child)
        node = PhysicalNode("Filter", plan.predicate.to_sql())
        node.children.append(child_node)
        shards = self._timed(node, lambda: self.ops.filter(child, plan.predicate))
        return shards, node

    def _exec_project(self, plan: Project) -> Tuple[Shards, PhysicalNode]:
        child, child_node = self._exec(plan.child)
        dist = self._project_dist(plan, child)
        node = PhysicalNode("Project")
        node.children.append(child_node)
        shards = self._timed(
            node,
            lambda: self.ops.project(
                child, plan.outputs, plan.output_columns, dist
            ),
        )
        return shards, node

    def _project_dist(self, plan: Project, child: Shards) -> DistDesc:
        """Track the hash distribution through column renames."""
        return project_dist(plan.outputs, child.columns, child.dist)

    # -- joins ------------------------------------------------------------------

    def _exec_join(self, plan: HashJoin) -> Tuple[Shards, PhysicalNode]:
        left, left_node = self._exec(plan.left)
        right, right_node = self._exec(plan.right)
        left_keys = [
            left.columns[resolve_column(k, left.columns)] for k in plan.left_keys
        ]
        right_keys = [
            right.columns[resolve_column(k, right.columns)] for k in plan.right_keys
        ]

        left, right, left_node, right_node, out_dist = self._collocate(
            left, right, left_keys, right_keys, left_node, right_node, plan
        )

        out_columns = left.columns + right.columns
        lpos = [resolve_column(k, left.columns) for k in left_keys]
        rpos = [resolve_column(k, right.columns) for k in right_keys]
        if left.dist.kind == "replicated" and right.dist.kind == "replicated":
            out_dist = DistDesc.arbitrary()
        node = PhysicalNode("Hash Join", join_detail(left_keys, right_keys))
        node.children.extend([left_node, right_node])
        shards = self._timed(
            node,
            lambda: self.ops.join(
                left, right, lpos, rpos, plan.residual, out_columns, out_dist
            ),
        )
        return shards, node

    def _collocate(
        self,
        left: Shards,
        right: Shards,
        left_keys: List[str],
        right_keys: List[str],
        left_node: PhysicalNode,
        right_node: PhysicalNode,
        plan: HashJoin,
    ) -> Tuple[Shards, Shards, PhysicalNode, PhysicalNode, DistDesc]:
        """Insert motions so the two join inputs are collocated.

        Returns possibly-moved shards, their (possibly motion-wrapped)
        plan nodes, and the output distribution of the join.
        """
        # replicated inputs join locally against anything
        if left.dist.kind == "replicated":
            return left, right, left_node, right_node, right.dist
        if right.dist.kind == "replicated":
            return left, right, left_node, right_node, left.dist

        # a side hashed on a SUBSET of its join keys is collocatable:
        # equal join keys imply equal subset values, hence same segment
        left_perm = subset_perm(left.dist, left_keys)
        right_perm = subset_perm(right.dist, right_keys)
        if left_perm is not None and left_perm == right_perm:
            return left, right, left_node, right_node, left.dist

        if left_perm is not None:
            # move right to hash on the columns corresponding to left's
            keys = [right_keys[i] for i in left_perm]
            right, right_node = self._redistribute(right, keys, right_node)
            return left, right, left_node, right_node, left.dist
        if right_perm is not None:
            keys = [left_keys[i] for i in right_perm]
            left, left_node = self._redistribute(left, keys, left_node)
            return left, right, left_node, right_node, right.dist

        # neither collocated: cost-based redistribute-both vs
        # broadcast-smaller — from actual sizes (adaptive) or from the
        # static planner's estimates (plan_mode="static")
        choice = None
        if self.static_choices is not None:
            choice = self.static_choices.get(id(plan))
        if choice is None:
            choice = choose_fallback_motion(
                left.total_rows, right.total_rows, self.nseg
            )
        if choice == FALLBACK_BROADCAST_LEFT:
            left, left_node = self._broadcast(left, left_node)
            return left, right, left_node, right_node, right.dist
        if choice == FALLBACK_BROADCAST_RIGHT:
            right, right_node = self._broadcast(right, right_node)
            return left, right, left_node, right_node, left.dist
        left, left_node = self._redistribute(left, left_keys, left_node)
        right, right_node = self._redistribute(right, right_keys, right_node)
        return left, right, left_node, right_node, left.dist

    def _exec_anti_join(self, plan: AntiJoin) -> Tuple[Shards, PhysicalNode]:
        """NOT EXISTS: valid per-segment when every right row that could
        match a left row lives on the left row's segment — i.e. the
        right side is replicated, or both sides are hashed on the
        (corresponding) anti-join keys."""
        left, left_node = self._exec(plan.left)
        right, right_node = self._exec(plan.right)
        left_keys = [
            left.columns[resolve_column(k, left.columns)] for k in plan.left_keys
        ]
        right_keys = [
            right.columns[resolve_column(k, right.columns)] for k in plan.right_keys
        ]
        if right.dist.kind != "replicated":
            left_perm = subset_perm(left.dist, left_keys)
            right_perm = subset_perm(right.dist, right_keys)
            if left_perm is not None and left_perm == right_perm:
                pass  # already collocated
            elif right_perm is not None:
                keys = [left_keys[i] for i in right_perm]
                left, left_node = self._redistribute(left, keys, left_node)
            elif left_perm is not None:
                keys = [right_keys[i] for i in left_perm]
                right, right_node = self._redistribute(right, keys, right_node)
            else:
                left, left_node = self._redistribute(left, left_keys, left_node)
                right, right_node = self._redistribute(right, right_keys, right_node)

        lpos = [resolve_column(k, left.columns) for k in left_keys]
        rpos = [resolve_column(k, right.columns) for k in right_keys]
        out_dist = (
            left.dist if left.dist.kind != "replicated" else DistDesc.arbitrary()
        )
        node = PhysicalNode("Hash Anti Join", join_detail(left_keys, right_keys))
        node.children.extend([left_node, right_node])
        shards = self._timed(
            node, lambda: self.ops.anti_join(left, right, lpos, rpos, out_dist)
        )
        return shards, node

    # -- motions -------------------------------------------------------------

    def _redistribute(
        self, shards: Shards, keys: List[str], child_node: PhysicalNode
    ) -> Tuple[Shards, PhysicalNode]:
        positions = [resolve_column(k, shards.columns) for k in keys]
        node = PhysicalNode("Redistribute Motion", f"on ({', '.join(keys)})")
        node.children.append(child_node)
        moved = self._timed(
            node, lambda: self.ops.redistribute(shards, positions, keys)
        )
        return moved, node

    def _broadcast(
        self, shards: Shards, child_node: PhysicalNode
    ) -> Tuple[Shards, PhysicalNode]:
        node = PhysicalNode("Broadcast Motion")
        node.children.append(child_node)
        moved = self._timed(node, lambda: self.ops.broadcast(shards))
        return moved, node

    def _gather_to_first(
        self, shards: Shards, child_node: PhysicalNode
    ) -> Tuple[Shards, PhysicalNode]:
        node = PhysicalNode("Gather Motion", "to seg0")
        node.children.append(child_node)
        moved = self._timed(node, lambda: self.ops.gather_first(shards))
        return moved, node

    # -- distinct / aggregate / union / limit -------------------------------------

    def _exec_distinct(self, plan: Distinct) -> Tuple[Shards, PhysicalNode]:
        child, child_node = self._exec(plan.child)
        if child.dist.kind == "arbitrary":
            child, child_node = self._redistribute(
                child, list(child.columns), child_node
            )
        node = PhysicalNode("Distinct")
        node.children.append(child_node)
        shards = self._timed(node, lambda: self.ops.distinct(child))
        return shards, node

    def _exec_aggregate(self, plan: Aggregate) -> Tuple[Shards, PhysicalNode]:
        child, child_node = self._exec(plan.child)
        if plan.group_by:
            if (
                child.dist.kind != "hash"
                or not set(child.dist.columns or ()) <= qualified_set(plan.group_by, child.columns)
            ):
                keys = [
                    child.columns[resolve_column(c, child.columns)]
                    for c in plan.group_by
                ]
                child, child_node = self._redistribute(child, keys, child_node)
        else:
            child, child_node = self._gather_to_first(child, child_node)

        group_pos = [resolve_column(c, child.columns) for c in plan.group_by]
        agg_pos = [
            resolve_column(c, child.columns) if c is not None else None
            for _, c, _ in plan.aggregates
        ]
        out_columns = plan.output_columns
        out_dist = (
            DistDesc.hash_on(plan.group_by)
            if plan.group_by
            else DistDesc.arbitrary()
        )
        node = PhysicalNode("HashAggregate", f"group by ({', '.join(plan.group_by)})")
        node.children.append(child_node)
        shards = self._timed(
            node,
            lambda: self.ops.aggregate(
                child, group_pos, plan.aggregates, agg_pos, plan.having,
                out_columns, not plan.group_by, out_dist,
            ),
        )
        return shards, node

    def _exec_union(self, plan: UnionAll) -> Tuple[Shards, PhysicalNode]:
        results = [self._exec(child) for child in plan.children]
        node = PhysicalNode("Append")
        node.children.extend(child_node for _, child_node in results)
        out_columns = plan.output_columns
        dists = set()
        for shards, _ in results:
            if shards.dist.kind == "replicated":
                dists.add(DistDesc.arbitrary())
            else:
                dists.add(shards.dist)
        dist = dists.pop() if len(dists) == 1 else DistDesc.arbitrary()
        shards = self._timed(
            node,
            lambda: self.ops.union(
                [child for child, _ in results], out_columns, dist
            ),
        )
        return shards, node

    def _exec_sort(self, plan: Sort) -> Tuple[Shards, PhysicalNode]:
        """Global order requires a gather; the sort runs on segment 0
        (a merge of per-segment sorted runs in a real system)."""
        child, child_node = self._exec(plan.child)
        child, child_node = self._gather_to_first(child, child_node)
        positions = [
            (resolve_column(name, child.columns), descending)
            for name, descending in plan.keys
        ]
        node = PhysicalNode("Sort", plan.describe().replace("Sort: ", ""))
        node.children.append(child_node)
        shards = self._timed(node, lambda: self.ops.sort(child, positions))
        return shards, node

    def _exec_limit(self, plan: Limit) -> Tuple[Shards, PhysicalNode]:
        if plan.limit < 0:
            # same guard as the single-node executors: a negative limit
            # would silently slice rows off the end
            raise ExecutionError(
                f"Limit must be non-negative, got {plan.limit}"
            )
        child, child_node = self._exec(plan.child)
        child, child_node = self._gather_to_first(child, child_node)
        node = PhysicalNode("Limit", str(plan.limit))
        node.children.append(child_node)
        shards = self._timed(node, lambda: self.ops.limit(child, plan.limit))
        return shards, node


