"""Statistics-driven static planner for the MPP simulator.

The adaptive executor (:mod:`repro.mpp.cluster`) decides motions from
*actual* intermediate sizes.  This module makes the same decisions from
catalog statistics (:mod:`repro.relational.statistics`) **before any row
is touched**: it walks a logical plan, propagates cardinality estimates
through scans/filters/joins under the standard independence assumptions,
mirrors the executor's distribution tracking (:class:`DistDesc`), and
prices each operator with the :mod:`repro.relational.cost` constants.

Two consumers:

* ``MPPDatabase(plan_mode="static")`` takes the cost-based
  broadcast-vs-redistribute choices from the static plan instead of the
  adaptive sizes.  Collocation itself stays purely distribution-driven
  (identical in both modes), so rows are unaffected by mispredictions —
  only which motion gets paid for.
* :mod:`repro.analyze.plans` runs the planner over each partition's
  grounding queries and turns the estimates into PKB101+ findings and
  ``repro explain`` output (the paper's Figure 4, statically).

Cardinality model (textbook System-R assumptions):

* equality with a constant selects ``1/ndv`` of the rows;
* an equi-join on keys ``k`` produces ``|L|·|R| / max(ndv_L(k), ndv_R(k))``;
* distinct/group-by emit ``min(rows, Π ndv(columns))`` rows;
* column values are independent and uniformly distributed — skew is
  tracked separately via each column's most-common-value fraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..relational.cost import (
    QUERY_OVERHEAD_S,
    ROW_BROADCAST_S,
    ROW_BUILD_S,
    ROW_OUTPUT_S,
    ROW_PROBE_S,
    ROW_SCAN_S,
    ROW_SHIP_S,
)
from ..relational.expr import (
    And,
    Col,
    Compare,
    Const,
    Expr,
    IsNull,
    Not,
    Or,
    resolve_column,
)
from ..relational.plan import (
    Aggregate,
    AntiJoin,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    PlanNode,
    Project,
    Scan,
    Sort,
    UnionAll,
    Values,
    walk,
)
from ..relational.statistics import (
    StatisticsCatalog,
    TableDistribution,
    table_stats,
)
from ..relational.types import ExecutionError
from .distribution import ReplicatedDistribution
from .plannodes import DistDesc, PhysicalNode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .cluster import MPPDatabase

#: Selectivity of a non-equality comparison (System R's magic 1/3).
DEFAULT_INEQ_SELECTIVITY = 1.0 / 3.0
#: Selectivity of a predicate the estimator cannot decompose.
DEFAULT_SELECTIVITY = 0.5
#: Cardinalities are capped here so products cannot overflow.
MAX_ROWS = 1.0e18

#: Fallback motion choices for a join where neither side is collocated.
FALLBACK_BROADCAST_LEFT = "broadcast_left"
FALLBACK_BROADCAST_RIGHT = "broadcast_right"
FALLBACK_REDISTRIBUTE_BOTH = "redistribute_both"


def choose_fallback_motion(left_rows: float, right_rows: float, nseg: int) -> str:
    """The cost-based choice when neither join side is collocated:
    broadcast the smaller input, or redistribute both on the join keys.

    This is the *only* data-dependent decision in the MPP planner; the
    adaptive executor calls it with actual shard sizes and the static
    planner with estimates, so the two modes differ in nothing else.
    """
    small_rows = min(left_rows, right_rows)
    redistribute_cost = left_rows + right_rows
    broadcast_cost = small_rows * nseg
    if broadcast_cost < redistribute_cost:
        if left_rows <= right_rows:
            return FALLBACK_BROADCAST_LEFT
        return FALLBACK_BROADCAST_RIGHT
    return FALLBACK_REDISTRIBUTE_BOTH


# -- shared distribution helpers (used by the adaptive executor too) -----------


def join_detail(left_keys: Sequence[str], right_keys: Sequence[str]) -> str:
    return "on " + " AND ".join(
        f"{l} = {r}" for l, r in zip(left_keys, right_keys)
    )


def qualified_set(names: Sequence[str], columns: Sequence[str]) -> Set[str]:
    return {columns[resolve_column(name, columns)] for name in names}


def subset_perm(dist: DistDesc, keys: Sequence[str]) -> Optional[Tuple[int, ...]]:
    """If ``dist`` hashes on a subset of ``keys``, the positions (into
    ``keys``) of its hash columns, in hash order; else None."""
    if dist.kind != "hash" or dist.columns is None:
        return None
    key_list = list(keys)
    try:
        return tuple(key_list.index(column) for column in dist.columns)
    except ValueError:
        return None


def project_dist(
    outputs: Sequence[Tuple[Expr, str]],
    child_columns: Sequence[str],
    child_dist: DistDesc,
) -> DistDesc:
    """Track a hash distribution through a projection's column renames."""
    if child_dist.kind != "hash":
        return child_dist
    rename: Dict[str, str] = {}
    for expr, name in outputs:
        if isinstance(expr, Col):
            source = child_columns[resolve_column(expr.name, child_columns)]
            rename.setdefault(source, name)
    mapped = []
    for column in child_dist.columns or ():
        if column not in rename:
            return DistDesc.arbitrary()
        mapped.append(rename[column])
    return DistDesc.hash_on(mapped)


def dist_from_table(distribution: TableDistribution, alias: str) -> DistDesc:
    """The :class:`DistDesc` of scanning a stored table under an alias."""
    if distribution.kind == "replicated":
        return DistDesc.replicated()
    if distribution.kind == "hash" and distribution.columns is not None:
        return DistDesc.hash_on(f"{alias}.{c}" for c in distribution.columns)
    return DistDesc.arbitrary()


# -- statistics collection ----------------------------------------------------


def collect_mpp_statistics(
    db: "MPPDatabase",
    table_names: Optional[Iterable[str]] = None,
) -> StatisticsCatalog:
    """ANALYZE the cluster's stored tables (rows, ndv, skew, layout)."""
    catalog = StatisticsCatalog(num_segments=db.nseg)
    names = list(table_names) if table_names is not None else list(db.tables)
    for name in names:
        table = db.table(name)
        stats = table_stats(table.schema.column_names, table.all_rows())
        policy = table.policy
        if isinstance(policy, ReplicatedDistribution):
            distribution = TableDistribution.replicated()
        elif policy.key_columns is not None:
            distribution = TableDistribution.hash_on(policy.key_columns)
        else:
            distribution = TableDistribution.random()
        catalog.add(name, stats, distribution)
    return catalog


# -- plan estimates -----------------------------------------------------------


@dataclass
class MotionEstimate:
    """One predicted motion operator and what it would ship."""

    kind: str  # "redistribute" | "broadcast" | "gather"
    #: estimated input rows of the motion
    rows: float
    #: estimated row *copies* crossing the interconnect
    shipped: float
    #: stored tables feeding the moved side
    source_tables: Tuple[str, ...]
    detail: str = ""


@dataclass
class JoinEstimate:
    """Static prediction for one hash join."""

    detail: str
    left_rows: float
    right_rows: float
    est_rows: float
    #: True when no motion was needed (Section 4.4's collocated case)
    collocated: bool
    #: motions inserted to collocate this join
    motions: List[MotionEstimate] = field(default_factory=list)
    #: worst most-common-value fraction among the join key columns
    key_mcv: float = 0.0
    #: stored tables feeding either side
    source_tables: Tuple[str, ...] = ()


@dataclass
class StaticPlan:
    """The static planner's verdict on one logical plan."""

    root: PhysicalNode
    estimated_rows: int
    estimated_seconds: float
    #: cost-based fallback choice per HashJoin node (keyed by ``id(node)``)
    fallback_choices: Dict[int, str] = field(default_factory=dict)
    joins: List[JoinEstimate] = field(default_factory=list)
    motions: List[MotionEstimate] = field(default_factory=list)

    def explain(self) -> str:
        return self.root.explain()


@dataclass
class _Est:
    """Estimator state for one plan node's output."""

    columns: List[str]
    rows: float
    dist: DistDesc
    #: per output column: estimated distinct count
    ndv: Dict[str, float]
    #: per output column: estimated NULL fraction
    nulls: Dict[str, float]
    #: per output column: most-common-value fraction
    mcv: Dict[str, float]
    #: stored tables feeding this node
    tables: frozenset
    node: PhysicalNode


class StaticPlanner:
    """Estimate a logical plan's cardinalities, motions, and cost."""

    def __init__(self, catalog: StatisticsCatalog, nseg: Optional[int] = None) -> None:
        self.catalog = catalog
        self.nseg = nseg if nseg is not None else catalog.num_segments
        ensure_positive = self.nseg >= 1
        if not ensure_positive:
            raise ExecutionError("need at least one segment")

    def plan(self, plan: PlanNode) -> StaticPlan:
        self._fallbacks: Dict[int, str] = {}
        self._joins: List[JoinEstimate] = []
        self._motions: List[MotionEstimate] = []
        self._bind(plan)
        est = self._est(plan)
        return StaticPlan(
            root=est.node,
            estimated_rows=int(round(est.rows)),
            estimated_seconds=est.node.total_seconds() + QUERY_OVERHEAD_S,
            fallback_choices=self._fallbacks,
            joins=self._joins,
            motions=self._motions,
        )

    def _bind(self, plan: PlanNode) -> None:
        for node in walk(plan):
            if isinstance(node, Scan):
                stats = self.catalog.stats(node.table_name)
                node.set_table_columns(stats.column_names)

    # -- helpers -------------------------------------------------------------

    def _parallelism(self, dist: DistDesc) -> float:
        """How many ways an operator's work divides: replicated
        intermediates are processed in full on every segment."""
        if dist.kind == "replicated":
            return 1.0
        return float(self.nseg)

    @staticmethod
    def _cap(rows: float) -> float:
        return max(0.0, min(rows, MAX_ROWS))

    def _ndv_of(self, est: _Est, name: str) -> float:
        column = est.columns[resolve_column(name, est.columns)]
        return max(1.0, min(est.ndv.get(column, est.rows), max(est.rows, 1.0)))

    def _mcv_of(self, est: _Est, name: str) -> float:
        column = est.columns[resolve_column(name, est.columns)]
        return est.mcv.get(column, 0.0)

    def _scaled_ndv(self, ndv: Dict[str, float], rows: float) -> Dict[str, float]:
        return {name: min(value, max(rows, 1.0)) for name, value in ndv.items()}

    # -- selectivity --------------------------------------------------------------

    def _selectivity(self, expr: Expr, est: _Est) -> float:
        if isinstance(expr, And):
            sel = 1.0
            for operand in expr.operands:
                sel *= self._selectivity(operand, est)
            return sel
        if isinstance(expr, Or):
            miss = 1.0
            for operand in expr.operands:
                miss *= 1.0 - self._selectivity(operand, est)
            return 1.0 - miss
        if isinstance(expr, Not):
            return 1.0 - self._selectivity(expr.operand, est)
        if isinstance(expr, IsNull):
            if isinstance(expr.operand, Col):
                column = est.columns[
                    resolve_column(expr.operand.name, est.columns)
                ]
                null_fraction = est.nulls.get(column, 0.0)
                return 1.0 - null_fraction if expr.negated else null_fraction
            return DEFAULT_SELECTIVITY
        if isinstance(expr, Compare):
            return self._compare_selectivity(expr, est)
        return DEFAULT_SELECTIVITY

    def _compare_selectivity(self, expr: Compare, est: _Est) -> float:
        left, right = expr.left, expr.right
        if expr.op == "=":
            if isinstance(left, Col) and isinstance(right, Const):
                return 1.0 / self._ndv_of(est, left.name)
            if isinstance(left, Const) and isinstance(right, Col):
                return 1.0 / self._ndv_of(est, right.name)
            if isinstance(left, Col) and isinstance(right, Col):
                return 1.0 / max(
                    self._ndv_of(est, left.name), self._ndv_of(est, right.name)
                )
            return DEFAULT_SELECTIVITY
        if expr.op == "<>":
            inverse = Compare("=", left, right)
            return 1.0 - self._compare_selectivity(inverse, est)
        return DEFAULT_INEQ_SELECTIVITY

    # -- dispatch ----------------------------------------------------------------

    def _est(self, plan: PlanNode) -> _Est:
        est = self._dispatch(plan)
        # declare the derived distribution on the physical node so the
        # plan verifier (repro.mpp.verify) can cross-check it
        est.node.dist = est.dist
        return est

    def _dispatch(self, plan: PlanNode) -> _Est:
        if isinstance(plan, Scan):
            return self._est_scan(plan)
        if isinstance(plan, Values):
            return self._est_values(plan)
        if isinstance(plan, Filter):
            return self._est_filter(plan)
        if isinstance(plan, Project):
            return self._est_project(plan)
        if isinstance(plan, HashJoin):
            return self._est_join(plan)
        if isinstance(plan, AntiJoin):
            return self._est_anti_join(plan)
        if isinstance(plan, Distinct):
            return self._est_distinct(plan)
        if isinstance(plan, Aggregate):
            return self._est_aggregate(plan)
        if isinstance(plan, UnionAll):
            return self._est_union(plan)
        if isinstance(plan, Sort):
            return self._est_sort(plan)
        if isinstance(plan, Limit):
            return self._est_limit(plan)
        raise ExecutionError(
            f"unsupported plan node {type(plan).__name__} in static planner"
        )

    # -- leaves ------------------------------------------------------------------

    def _est_scan(self, plan: Scan) -> _Est:
        stats = self.catalog.stats(plan.table_name)
        dist = dist_from_table(
            self.catalog.distribution(plan.table_name), plan.alias
        )
        rows = float(stats.rows)
        ndv: Dict[str, float] = {}
        nulls: Dict[str, float] = {}
        mcv: Dict[str, float] = {}
        for name in stats.column_names:
            column = stats.column(name)
            qualified = f"{plan.alias}.{name}"
            ndv[qualified] = float(max(1, column.distinct)) if rows else 0.0
            nulls[qualified] = column.null_fraction
            mcv[qualified] = column.mcv_fraction
        node = PhysicalNode("Seq Scan", f"on {plan.table_name}")
        node.rows = int(round(rows))
        node.seconds = rows / self._parallelism(dist) * ROW_SCAN_S
        return _Est(
            columns=plan.output_columns,
            rows=rows,
            dist=dist,
            ndv=ndv,
            nulls=nulls,
            mcv=mcv,
            tables=frozenset([plan.table_name]),
            node=node,
        )

    def _est_values(self, plan: Values) -> _Est:
        rows = float(len(plan.rows))
        node = PhysicalNode("Values", rows=len(plan.rows))
        return _Est(
            columns=plan.output_columns,
            rows=rows,
            dist=DistDesc.arbitrary(),
            ndv={name: rows for name in plan.output_columns},
            nulls={},
            mcv={},
            tables=frozenset(),
            node=node,
        )

    # -- unary -------------------------------------------------------------------

    def _est_filter(self, plan: Filter) -> _Est:
        child = self._est(plan.child)
        selectivity = min(1.0, max(0.0, self._selectivity(plan.predicate, child)))
        rows = self._cap(child.rows * selectivity)
        ndv = self._scaled_ndv(dict(child.ndv), rows)
        # equality with a constant pins that column to a single value
        for conjunct in (
            plan.predicate.operands
            if isinstance(plan.predicate, And)
            else [plan.predicate]
        ):
            if (
                isinstance(conjunct, Compare)
                and conjunct.op == "="
                and isinstance(conjunct.left, Col)
                and isinstance(conjunct.right, Const)
            ):
                column = child.columns[
                    resolve_column(conjunct.left.name, child.columns)
                ]
                ndv[column] = 1.0
        node = PhysicalNode("Filter", plan.predicate.to_sql())
        node.children.append(child.node)
        parallelism = self._parallelism(child.dist)
        node.seconds = (
            child.rows * ROW_PROBE_S + rows * ROW_OUTPUT_S
        ) / parallelism
        node.rows = int(round(rows))
        return _Est(
            columns=child.columns,
            rows=rows,
            dist=child.dist,
            ndv=ndv,
            nulls=child.nulls,
            mcv=child.mcv,
            tables=child.tables,
            node=node,
        )

    def _est_project(self, plan: Project) -> _Est:
        child = self._est(plan.child)
        dist = project_dist(plan.outputs, child.columns, child.dist)
        ndv: Dict[str, float] = {}
        nulls: Dict[str, float] = {}
        mcv: Dict[str, float] = {}
        for expr, name in plan.outputs:
            if isinstance(expr, Col):
                source = child.columns[resolve_column(expr.name, child.columns)]
                ndv[name] = child.ndv.get(source, child.rows)
                nulls[name] = child.nulls.get(source, 0.0)
                mcv[name] = child.mcv.get(source, 0.0)
            elif isinstance(expr, Const):
                ndv[name] = 1.0
                nulls[name] = 1.0 if expr.value is None else 0.0
                mcv[name] = 1.0
            else:
                ndv[name] = child.rows
        node = PhysicalNode("Project")
        node.children.append(child.node)
        node.seconds = (
            child.rows * ROW_OUTPUT_S / self._parallelism(child.dist)
        )
        node.rows = int(round(child.rows))
        return _Est(
            columns=plan.output_columns,
            rows=child.rows,
            dist=dist,
            ndv=ndv,
            nulls=nulls,
            mcv=mcv,
            tables=child.tables,
            node=node,
        )

    # -- joins -------------------------------------------------------------------

    def _est_join(self, plan: HashJoin) -> _Est:
        left = self._est(plan.left)
        right = self._est(plan.right)
        left_keys = [
            left.columns[resolve_column(k, left.columns)] for k in plan.left_keys
        ]
        right_keys = [
            right.columns[resolve_column(k, right.columns)]
            for k in plan.right_keys
        ]

        motions: List[MotionEstimate] = []
        left, right, out_dist = self._collocate(
            plan, left, right, left_keys, right_keys, motions
        )

        out_columns = left.columns + right.columns
        if left.dist.kind == "replicated" and right.dist.kind == "replicated":
            out_dist = DistDesc.arbitrary()

        # |L ⋈ R| = |L|·|R| / Π max(ndv_L(k), ndv_R(k))
        rows = left.rows * right.rows
        joined_ndv: Dict[str, float] = {}
        key_mcv = 0.0
        for lkey, rkey in zip(left_keys, right_keys):
            ndv_l = self._ndv_of(left, lkey)
            ndv_r = self._ndv_of(right, rkey)
            rows /= max(ndv_l, ndv_r, 1.0)
            joined_ndv[lkey] = joined_ndv[rkey] = min(ndv_l, ndv_r)
            key_mcv = max(
                key_mcv, self._mcv_of(left, lkey), self._mcv_of(right, rkey)
            )
        rows = self._cap(rows)

        ndv = {**left.ndv, **right.ndv, **joined_ndv}
        est = _Est(
            columns=out_columns,
            rows=rows,
            dist=out_dist,
            ndv=self._scaled_ndv(ndv, rows),
            nulls={**left.nulls, **right.nulls},
            mcv={**left.mcv, **right.mcv},
            tables=left.tables | right.tables,
            node=PhysicalNode("Hash Join", join_detail(left_keys, right_keys)),
        )
        if plan.residual is not None:
            residual_sel = min(
                1.0, max(0.0, self._selectivity(plan.residual, est))
            )
            rows = self._cap(rows * residual_sel)
            est.rows = rows
            est.ndv = self._scaled_ndv(est.ndv, rows)

        est.node.children.extend([left.node, right.node])
        est.node.rows = int(round(rows))
        est.node.seconds = self._join_seconds(left, right, rows)

        self._joins.append(
            JoinEstimate(
                detail=join_detail(left_keys, right_keys),
                left_rows=left.rows,
                right_rows=right.rows,
                est_rows=rows,
                collocated=not motions,
                motions=motions,
                key_mcv=key_mcv,
                source_tables=tuple(sorted(left.tables | right.tables)),
            )
        )
        return est

    def _join_seconds(self, left: _Est, right: _Est, out_rows: float) -> float:
        if left.dist.kind == "replicated" and right.dist.kind == "replicated":
            build = min(left.rows, right.rows)
            probe = max(left.rows, right.rows)
            return build * ROW_BUILD_S + probe * ROW_PROBE_S + out_rows * ROW_OUTPUT_S
        left_eff = left.rows / self._parallelism(left.dist)
        right_eff = right.rows / self._parallelism(right.dist)
        build = min(left_eff, right_eff)
        probe = max(left_eff, right_eff)
        out_eff = out_rows / self.nseg
        return build * ROW_BUILD_S + probe * ROW_PROBE_S + out_eff * ROW_OUTPUT_S

    def _collocate(
        self,
        plan: HashJoin,
        left: _Est,
        right: _Est,
        left_keys: List[str],
        right_keys: List[str],
        motions: List[MotionEstimate],
    ) -> Tuple[_Est, _Est, DistDesc]:
        """Mirror of the executor's collocation logic over estimates."""
        if left.dist.kind == "replicated":
            return left, right, right.dist
        if right.dist.kind == "replicated":
            return left, right, left.dist

        left_perm = subset_perm(left.dist, left_keys)
        right_perm = subset_perm(right.dist, right_keys)
        if left_perm is not None and left_perm == right_perm:
            return left, right, left.dist

        if left_perm is not None:
            keys = [right_keys[i] for i in left_perm]
            right = self._redistribute(right, keys, motions)
            return left, right, left.dist
        if right_perm is not None:
            keys = [left_keys[i] for i in right_perm]
            left = self._redistribute(left, keys, motions)
            return left, right, right.dist

        choice = choose_fallback_motion(left.rows, right.rows, self.nseg)
        self._fallbacks[id(plan)] = choice
        if choice == FALLBACK_BROADCAST_LEFT:
            left = self._broadcast(left, motions)
            return left, right, right.dist
        if choice == FALLBACK_BROADCAST_RIGHT:
            right = self._broadcast(right, motions)
            return left, right, left.dist
        left = self._redistribute(left, left_keys, motions)
        right = self._redistribute(right, right_keys, motions)
        return left, right, left.dist

    def _est_anti_join(self, plan: AntiJoin) -> _Est:
        left = self._est(plan.left)
        right = self._est(plan.right)
        left_keys = [
            left.columns[resolve_column(k, left.columns)] for k in plan.left_keys
        ]
        right_keys = [
            right.columns[resolve_column(k, right.columns)]
            for k in plan.right_keys
        ]
        motions: List[MotionEstimate] = []
        if right.dist.kind != "replicated":
            left_perm = subset_perm(left.dist, left_keys)
            right_perm = subset_perm(right.dist, right_keys)
            if left_perm is not None and left_perm == right_perm:
                pass
            elif right_perm is not None:
                keys = [left_keys[i] for i in right_perm]
                left = self._redistribute(left, keys, motions)
            elif left_perm is not None:
                keys = [right_keys[i] for i in left_perm]
                right = self._redistribute(right, keys, motions)
            else:
                left = self._redistribute(left, left_keys, motions)
                right = self._redistribute(right, right_keys, motions)

        # surviving fraction ≈ share of the key domain the right side misses
        distinct_left = 1.0
        distinct_right = 1.0
        for lkey, rkey in zip(left_keys, right_keys):
            distinct_left = min(distinct_left * self._ndv_of(left, lkey), MAX_ROWS)
            distinct_right = min(
                distinct_right * self._ndv_of(right, rkey), MAX_ROWS
            )
        distinct_left = min(distinct_left, max(left.rows, 1.0))
        distinct_right = min(distinct_right, max(right.rows, 1.0))
        matched = min(1.0, distinct_right / max(distinct_left, 1.0))
        rows = self._cap(left.rows * (1.0 - matched))

        out_dist = (
            left.dist if left.dist.kind != "replicated" else DistDesc.arbitrary()
        )
        node = PhysicalNode("Hash Anti Join", join_detail(left_keys, right_keys))
        node.children.extend([left.node, right.node])
        right_eff = right.rows / self._parallelism(right.dist)
        left_eff = left.rows / self._parallelism(left.dist)
        node.seconds = (
            right_eff * ROW_BUILD_S
            + left_eff * ROW_PROBE_S
            + rows / self.nseg * ROW_OUTPUT_S
        )
        node.rows = int(round(rows))
        return _Est(
            columns=left.columns,
            rows=rows,
            dist=out_dist,
            ndv=self._scaled_ndv(dict(left.ndv), rows),
            nulls=left.nulls,
            mcv=left.mcv,
            tables=left.tables | right.tables,
            node=node,
        )

    # -- motions ------------------------------------------------------------------

    def _redistribute(
        self, est: _Est, keys: List[str], motions: List[MotionEstimate]
    ) -> _Est:
        if self.nseg == 1:
            # one segment has no interconnect: the "motion" is a no-op
            est.dist = DistDesc.hash_on(keys)
            return est
        node = PhysicalNode("Redistribute Motion", f"on ({', '.join(keys)})")
        node.dist = DistDesc.hash_on(keys)
        node.children.append(est.node)
        off_segment = est.rows * (self.nseg - 1) / self.nseg
        node.seconds = off_segment / self.nseg * ROW_SHIP_S
        node.rows = int(round(est.rows))
        motion = MotionEstimate(
            kind="redistribute",
            rows=est.rows,
            shipped=off_segment,
            source_tables=tuple(sorted(est.tables)),
            detail=node.detail,
        )
        motions.append(motion)
        self._motions.append(motion)
        return _Est(
            columns=est.columns,
            rows=est.rows,
            dist=DistDesc.hash_on(keys),
            ndv=est.ndv,
            nulls=est.nulls,
            mcv=est.mcv,
            tables=est.tables,
            node=node,
        )

    def _broadcast(self, est: _Est, motions: List[MotionEstimate]) -> _Est:
        if self.nseg == 1:
            est.dist = DistDesc.replicated()
            return est
        node = PhysicalNode("Broadcast Motion")
        node.dist = DistDesc.replicated()
        node.children.append(est.node)
        per_segment = est.rows * (self.nseg - 1) / self.nseg
        node.seconds = per_segment * ROW_BROADCAST_S
        node.rows = int(round(est.rows))
        motion = MotionEstimate(
            kind="broadcast",
            rows=est.rows,
            shipped=est.rows * (self.nseg - 1),
            source_tables=tuple(sorted(est.tables)),
        )
        motions.append(motion)
        self._motions.append(motion)
        return _Est(
            columns=est.columns,
            rows=est.rows,
            dist=DistDesc.replicated(),
            ndv=est.ndv,
            nulls=est.nulls,
            mcv=est.mcv,
            tables=est.tables,
            node=node,
        )

    def _gather(self, est: _Est) -> _Est:
        if self.nseg == 1:
            est.dist = DistDesc.arbitrary()
            return est
        node = PhysicalNode("Gather Motion", "to seg0")
        node.dist = DistDesc.arbitrary()
        node.children.append(est.node)
        off_segment = est.rows * (self.nseg - 1) / self.nseg
        node.seconds = off_segment * ROW_SHIP_S
        node.rows = int(round(est.rows))
        motion = MotionEstimate(
            kind="gather",
            rows=est.rows,
            shipped=off_segment,
            source_tables=tuple(sorted(est.tables)),
            detail=node.detail,
        )
        self._motions.append(motion)
        return _Est(
            columns=est.columns,
            rows=est.rows,
            dist=DistDesc.arbitrary(),
            ndv=est.ndv,
            nulls=est.nulls,
            mcv=est.mcv,
            tables=est.tables,
            node=node,
        )

    # -- distinct / aggregate / union / sort / limit ------------------------------

    def _est_distinct(self, plan: Distinct) -> _Est:
        child = self._est(plan.child)
        if child.dist.kind == "arbitrary":
            motions: List[MotionEstimate] = []
            child = self._redistribute(child, list(child.columns), motions)
        distinct = 1.0
        for column in child.columns:
            distinct = min(distinct * self._ndv_of(child, column), MAX_ROWS)
        rows = self._cap(min(child.rows, distinct))
        node = PhysicalNode("Distinct")
        node.children.append(child.node)
        parallelism = self._parallelism(child.dist)
        node.seconds = (
            child.rows * ROW_PROBE_S + rows * ROW_OUTPUT_S
        ) / parallelism
        node.rows = int(round(rows))
        return _Est(
            columns=child.columns,
            rows=rows,
            dist=child.dist,
            ndv=self._scaled_ndv(dict(child.ndv), rows),
            nulls=child.nulls,
            mcv=child.mcv,
            tables=child.tables,
            node=node,
        )

    def _est_aggregate(self, plan: Aggregate) -> _Est:
        child = self._est(plan.child)
        if plan.group_by:
            if (
                child.dist.kind != "hash"
                or not set(child.dist.columns or ())
                <= qualified_set(plan.group_by, child.columns)
            ):
                keys = [
                    child.columns[resolve_column(c, child.columns)]
                    for c in plan.group_by
                ]
                motions: List[MotionEstimate] = []
                child = self._redistribute(child, keys, motions)
        else:
            child = self._gather(child)

        if plan.group_by:
            groups = 1.0
            for name in plan.group_by:
                groups = min(groups * self._ndv_of(child, name), MAX_ROWS)
            rows = self._cap(min(child.rows, groups))
        else:
            rows = 1.0
        out_columns = plan.output_columns
        out_dist = (
            DistDesc.hash_on(plan.group_by)
            if plan.group_by
            else DistDesc.arbitrary()
        )
        ndv: Dict[str, float] = {}
        for name in plan.group_by:
            ndv[name] = min(self._ndv_of(child, name), max(rows, 1.0))
        for _, _, out_name in plan.aggregates:
            ndv[out_name] = rows
        node = PhysicalNode(
            "HashAggregate", f"group by ({', '.join(plan.group_by)})"
        )
        node.children.append(child.node)
        parallelism = self._parallelism(child.dist) if plan.group_by else 1.0
        node.seconds = (
            child.rows * ROW_PROBE_S + rows * ROW_OUTPUT_S
        ) / parallelism
        node.rows = int(round(rows))
        return _Est(
            columns=out_columns,
            rows=rows,
            dist=out_dist,
            ndv=ndv,
            nulls={},
            mcv={},
            tables=child.tables,
            node=node,
        )

    def _est_union(self, plan: UnionAll) -> _Est:
        children = [self._est(child) for child in plan.children]
        out_columns = plan.output_columns
        dists = set()
        for child in children:
            if child.dist.kind == "replicated":
                dists.add(DistDesc.arbitrary())
            else:
                dists.add(child.dist)
        dist = dists.pop() if len(dists) == 1 else DistDesc.arbitrary()
        rows = self._cap(sum(child.rows for child in children))
        ndv: Dict[str, float] = {}
        for pos, name in enumerate(out_columns):
            total = 0.0
            for child in children:
                total += child.ndv.get(child.columns[pos], child.rows)
            ndv[name] = min(total, max(rows, 1.0))
        node = PhysicalNode("Append")
        node.children.extend(child.node for child in children)
        # the executor charges rows_output for every concatenated row
        node.seconds = rows * ROW_OUTPUT_S / self._parallelism(dist)
        node.rows = int(round(rows))
        tables: frozenset = frozenset()
        for child in children:
            tables |= child.tables
        return _Est(
            columns=out_columns,
            rows=rows,
            dist=dist,
            ndv=ndv,
            nulls={},
            mcv={},
            tables=tables,
            node=node,
        )

    def _est_sort(self, plan: Sort) -> _Est:
        child = self._est(plan.child)
        child = self._gather(child)
        node = PhysicalNode("Sort", plan.describe().replace("Sort: ", ""))
        node.children.append(child.node)
        # sort runs on segment 0 and charges both probe and output
        node.seconds = child.rows * (ROW_PROBE_S + ROW_OUTPUT_S)
        node.rows = int(round(child.rows))
        return _Est(
            columns=child.columns,
            rows=child.rows,
            dist=DistDesc.arbitrary(),
            ndv=child.ndv,
            nulls=child.nulls,
            mcv=child.mcv,
            tables=child.tables,
            node=node,
        )

    def _est_limit(self, plan: Limit) -> _Est:
        child = self._est(plan.child)
        child = self._gather(child)
        rows = self._cap(min(child.rows, float(plan.limit)))
        node = PhysicalNode("Limit", str(plan.limit))
        node.children.append(child.node)
        node.rows = int(round(rows))
        return _Est(
            columns=child.columns,
            rows=rows,
            dist=DistDesc.arbitrary(),
            ndv=self._scaled_ndv(dict(child.ndv), rows),
            nulls=child.nulls,
            mcv=child.mcv,
            tables=child.tables,
            node=node,
        )
